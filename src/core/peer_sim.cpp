#include "core/peer_sim.hpp"

#include <memory>
#include <thread>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "core/kernels/blocked.hpp"
#include "machine/model.hpp"
#include "obs/aggregate.hpp"
#include "obs/counters.hpp"
#include "obs/registry.hpp"
#include "shmem/barrier.hpp"

namespace svsim {

PeerSim::PeerSim(IdxType n_qubits, int n_devices, SimConfig cfg)
    : n_(n_qubits),
      dim_(obs::admit_dim("peer", n_qubits, n_devices, 1, cfg.mem_limit)),
      n_dev_(n_devices),
      cfg_(cfg),
      cbits_(static_cast<std::size_t>(n_qubits), 0) {
  SVSIM_CHECK(n_devices >= 1 && is_pow2(n_devices),
              "device count must be a power of two");
  SVSIM_CHECK(dim_ >= n_devices, "more devices than amplitudes");
  lg_part_ = n_ - log2_exact(n_devices);

  const auto per_dev = static_cast<std::size_t>(pow2(lg_part_));
  real_parts_.reserve(static_cast<std::size_t>(n_dev_));
  imag_parts_.reserve(static_cast<std::size_t>(n_dev_));
  for (int d = 0; d < n_dev_; ++d) {
    real_parts_.emplace_back(per_dev, obs::MemTag::kState, d);
    imag_parts_.emplace_back(per_dev, obs::MemTag::kState, d);
    // The shared pointer array (Listing 4 lines 17-34).
    real_ptrs_.push_back(real_parts_.back().data());
    imag_ptrs_.push_back(imag_parts_.back().data());
  }
  real_parts_[0][0] = 1.0; // |0...0>

  mctx_.cbits = cbits_.data();
  rngs_.assign(static_cast<std::size_t>(n_dev_), Rng(cfg.seed));
  scratch_.assign(static_cast<std::size_t>(n_dev_), 0);
  traffic_.assign(static_cast<std::size_t>(n_dev_), PeerTraffic{});
}

void PeerSim::reset_state() {
  for (int d = 0; d < n_dev_; ++d) {
    real_parts_[static_cast<std::size_t>(d)].zero();
    imag_parts_[static_cast<std::size_t>(d)].zero();
  }
  real_parts_[0][0] = 1.0;
  std::fill(cbits_.begin(), cbits_.end(), 0);
  layout_.clear();
  for (auto& rng : rngs_) rng.reseed(cfg_.seed);
}

void PeerSim::execute(const Circuit& circuit) {
  static obs::Counter& runs = obs::Registry::global().counter("runs.peer");
  runs.add();
  obs::RunReport& rep = begin_report(circuit, n_dev_);

  // Communication-avoiding remap (ir/remap): hot qubits move below
  // lg_part_ so gates run device-local; readout is virtually permuted.
  // The report keeps the ORIGINAL circuit's tally/hash.
  const std::unique_ptr<RemapResult> rm =
      maybe_remap(circuit, cfg_, n_dev_, lg_part_, &layout_);
  ma_layouts_ = rm ? std::move(rm->ma_layouts) : std::vector<IdxType>{};
  mctx_.ma_layouts = ma_layouts_.empty() ? nullptr : ma_layouts_.data();
  mctx_.n_qubits = n_;
  const Circuit& exec = rm ? rm->circuit : circuit;

  const auto device_circuit =
      upload_circuit<PeerSpace>(exec, KernelTable<PeerSpace>::get());

  shmem::Barrier grid(n_dev_); // the multi-device grid (grid.sync())
  traffic_.assign(static_cast<std::size_t>(n_dev_), PeerTraffic{});
  dest_counts_.assign(
      static_cast<std::size_t>(n_dev_) * static_cast<std::size_t>(n_dev_), 0);
  if (cfg_.count_traffic) {
    for (int d = 0; d < n_dev_; ++d) {
      traffic_[static_cast<std::size_t>(d)].per_dest =
          dest_counts_.data() + static_cast<std::size_t>(d) *
                                    static_cast<std::size_t>(n_dev_);
    }
  }

  std::unique_ptr<obs::GateRecorder> rec;
  if (profiling_on(cfg_)) {
    rec = std::make_unique<obs::GateRecorder>(n_dev_,
                                              obs::Trace::global().enabled());
  }
  const std::unique_ptr<obs::HealthMonitor> health = make_health(cfg_);
  obs::FlightRecorder* flight = flight_on(cfg_);
  if (flight != nullptr) flight->begin_run(name(), n_, n_dev_);

  // Built once on the calling thread; shared read-only by every device
  // thread. Blocks must not straddle a partition, so b <= lg_part.
  const auto sched = kernels::prepare_sched<PeerSpace>(
      exec, device_circuit, cfg_, lg_part_, rec != nullptr,
      health ? health->every_n() : 0);
  if (sched.enabled) fold_sched_stats(rep, sched.sched.stats, sched.active, dim_);

  std::unique_ptr<obs::WaitRecorder> wrec;
  if (waitstats_on(cfg_)) wrec = std::make_unique<obs::WaitRecorder>(n_dev_);

  obs::ProgressBoard* progress = progress_on(cfg_);
  if (progress != nullptr) {
    progress->begin_run(name(), n_, n_dev_, exec,
                        sched.active ? &sched.sched : nullptr);
  }

  auto device_main = [&](int d) {
    set_log_pe(d);
    obs::WaitBind bind(wrec.get(), d);
    PeerSpace sp;
    sp.real_parts = real_ptrs_.data();
    sp.imag_parts = imag_ptrs_.data();
    sp.lg_part = lg_part_;
    sp.dim = dim_;
    sp.mctx = &mctx_;
    sp.rng = &rngs_[static_cast<std::size_t>(d)];
    sp.worker_id = d;
    sp.num_workers = n_dev_;
    sp.barrier = &grid;
    sp.scratch = scratch_.data();
    sp.traffic = cfg_.count_traffic ? &traffic_[static_cast<std::size_t>(d)]
                                    : nullptr;
    if (sched.active) {
      simulation_kernel_sched(device_circuit, sched, sp, rec.get(),
                              health.get(), flight, progress);
    } else {
      simulation_kernel(device_circuit, sp, rec.get(), health.get(), flight,
                        progress);
    }
  };

  // The sampler inherits into the device threads spawned below and they
  // join before it is read, so the counts cover the whole team.
  const bool roofline = roofline_on(cfg_);
  const obs::RunModel model =
      roofline ? obs::model_run(exec, sched.active ? &sched.sched : nullptr)
               : obs::RunModel{};
  obs::CounterSampler counters(roofline);
  const double loop_t0 = obs::trace_now_us();
  counters.start();
  {
    Timer::ScopedAccum wall(rep.wall_seconds);
    // One host thread per device (the paper's `omp parallel num_threads
    // (n_gpus)` launcher); device 0 runs on the calling thread.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n_dev_ - 1));
    for (int d = 1; d < n_dev_; ++d) workers.emplace_back(device_main, d);
    device_main(0);
    for (auto& t : workers) t.join();
  }
  counters.stop();
  set_log_pe(-1); // the calling thread ran device 0

  if (rec) rec->finish(rep, name());
  if (wrec) obs::fold_waitstate(rep, *wrec, name());
  if (roofline) {
    obs::fold_roofline(rep, model, counters.sample(),
                       machine::host_peak_gbps(n_dev_), name(), loop_t0,
                       obs::trace_now_us());
  }
  if (health) health->finish(rep);
  if (flight != nullptr) set_flight_pending(n_dev_);
  const PeerTraffic total = traffic();
  rep.comm.add_peer(total.local_access, total.remote_access);
  if (cfg_.count_traffic) {
    // Element accesses -> bytes: every peer access moves one ValType.
    rep.matrix.n = n_dev_;
    rep.matrix.bytes.assign(dest_counts_.size(), 0);
    for (std::size_t i = 0; i < dest_counts_.size(); ++i) {
      rep.matrix.bytes[i] = dest_counts_[i] * sizeof(ValType);
    }
  }
  if (progress != nullptr) progress->end_run(obs::to_json(rep));
}

void PeerSim::run(const Circuit& circuit) {
  SVSIM_CHECK(circuit.n_qubits() == n_, "circuit width != simulator width");
  execute(circuit);
}

StateVector PeerSim::state() const {
  StateVector sv(n_);
  const IdxType per = pow2(lg_part_);
  // Undo the remap layout virtually: physical amplitude index k holds
  // logical basis state permute_bits(k, inverse, n).
  std::vector<IdxType> inv;
  if (!layout_.empty()) {
    inv.resize(static_cast<std::size_t>(n_));
    for (IdxType l = 0; l < n_; ++l) {
      inv[static_cast<std::size_t>(layout_[static_cast<std::size_t>(l)])] = l;
    }
  }
  for (IdxType k = 0; k < dim_; ++k) {
    const auto d = static_cast<std::size_t>(k >> lg_part_);
    const auto off = static_cast<std::size_t>(k & (per - 1));
    const IdxType logical =
        inv.empty() ? k : permute_bits(k, inv.data(), n_);
    sv.amps[static_cast<std::size_t>(logical)] =
        Complex{real_parts_[d][off], imag_parts_[d][off]};
  }
  return sv;
}

void PeerSim::load_state(const StateVector& sv) {
  SVSIM_CHECK(sv.n_qubits == n_, "state width mismatch");
  layout_.clear(); // loaded amplitudes are in natural (logical) order
  const IdxType per = pow2(lg_part_);
  for (IdxType k = 0; k < dim_; ++k) {
    const auto d = static_cast<std::size_t>(k >> lg_part_);
    const auto off = static_cast<std::size_t>(k & (per - 1));
    real_parts_[d][off] = sv.amps[static_cast<std::size_t>(k)].real();
    imag_parts_[d][off] = sv.amps[static_cast<std::size_t>(k)].imag();
  }
}

std::vector<IdxType> PeerSim::sample(IdxType shots) {
  results_.assign(static_cast<std::size_t>(shots), 0);
  mctx_.results = results_.data();
  mctx_.n_shots = shots;
  Circuit c(n_);
  c.measure_all();
  execute(c);
  mctx_.results = nullptr;
  mctx_.n_shots = 0;
  return results_;
}

PeerTraffic PeerSim::traffic() const {
  PeerTraffic total;
  for (const auto& t : traffic_) {
    total.local_access += t.local_access;
    total.remote_access += t.remote_access;
  }
  return total;
}

} // namespace svsim
