#include "core/single_sim.hpp"

#include "common/timer.hpp"
#include "core/kernels/blocked.hpp"
#include "machine/model.hpp"
#include "obs/counters.hpp"
#include "obs/registry.hpp"

namespace svsim {

SingleSim::SingleSim(IdxType n_qubits, SimConfig cfg)
    : n_(n_qubits),
      dim_(obs::admit_dim("single", n_qubits, 1, 1, cfg.mem_limit)),
      cfg_(cfg),
      real_(static_cast<std::size_t>(dim_), obs::MemTag::kState, 0),
      imag_(static_cast<std::size_t>(dim_), obs::MemTag::kState, 0),
      cbits_(static_cast<std::size_t>(n_qubits), 0),
      rng_(cfg.seed),
      table_(&local_kernel_table(cfg.simd)) {
  SVSIM_CHECK(cfg.simd <= max_simd_level(),
              "requested SIMD level not supported by this CPU/build");
  real_[0] = 1.0; // |0...0>
  mctx_.cbits = cbits_.data();
}

void SingleSim::reset_state() {
  real_.zero();
  imag_.zero();
  real_[0] = 1.0;
  std::fill(cbits_.begin(), cbits_.end(), 0);
  rng_.reseed(cfg_.seed);
}

LocalSpace SingleSim::make_space() {
  LocalSpace sp;
  sp.real = real_.data();
  sp.imag = imag_.data();
  sp.dim = dim_;
  sp.mctx = &mctx_;
  sp.rng = &rng_;
  return sp;
}

void SingleSim::run(const Circuit& circuit) {
  SVSIM_CHECK(circuit.n_qubits() == n_, "circuit width != simulator width");
  static obs::Counter& runs = obs::Registry::global().counter("runs.single");
  runs.add();
  obs::RunReport& rep = begin_report(circuit, 1);
  const auto device_circuit = upload_circuit<LocalSpace>(circuit, *table_);
  const LocalSpace sp = make_space();
  const std::unique_ptr<obs::HealthMonitor> health = make_health(cfg_);
  obs::FlightRecorder* flight = flight_on(cfg_);
  if (flight != nullptr) flight->begin_run(name(), n_, 1);
  const bool prof = profiling_on(cfg_);
  // One worker owns the whole register: blocks may span all n bits.
  const auto sched = kernels::prepare_sched<LocalSpace>(
      circuit, device_circuit, cfg_, n_, prof,
      health ? health->every_n() : 0);
  if (sched.enabled) fold_sched_stats(rep, sched.sched.stats, sched.active, dim_);
  const bool roofline = roofline_on(cfg_);
  const obs::RunModel model =
      roofline ? obs::model_run(circuit, sched.active ? &sched.sched : nullptr)
               : obs::RunModel{};
  obs::ProgressBoard* progress = progress_on(cfg_);
  if (progress != nullptr) {
    progress->begin_run(name(), n_, 1, circuit,
                        sched.active ? &sched.sched : nullptr);
  }
  obs::CounterSampler counters(roofline);
  const double loop_t0 = obs::trace_now_us();
  counters.start();
  {
    Timer::ScopedAccum wall(rep.wall_seconds);
    if (prof) {
      obs::GateRecorder rec(1, obs::Trace::global().enabled());
      if (sched.active) {
        simulation_kernel_sched(device_circuit, sched, sp, &rec, health.get(),
                                flight, progress);
      } else {
        simulation_kernel(device_circuit, sp, &rec, health.get(), flight,
                          progress);
      }
      rec.finish(rep, name());
    } else if (sched.active) {
      simulation_kernel_sched(device_circuit, sched, sp, nullptr, health.get(),
                              flight, progress);
    } else {
      simulation_kernel(device_circuit, sp, nullptr, health.get(), flight,
                        progress);
    }
  }
  counters.stop();
  if (roofline) {
    obs::fold_roofline(rep, model, counters.sample(),
                       machine::host_peak_gbps(1), name(), loop_t0,
                       obs::trace_now_us());
  }
  if (health) health->finish(rep);
  if (flight != nullptr) set_flight_pending(1);
  if (progress != nullptr) progress->end_run(obs::to_json(rep));
}

StateVector SingleSim::state() const {
  StateVector sv(n_);
  for (IdxType k = 0; k < dim_; ++k) {
    sv.amps[static_cast<std::size_t>(k)] = Complex{real_[static_cast<std::size_t>(k)],
                                                   imag_[static_cast<std::size_t>(k)]};
  }
  return sv;
}

void SingleSim::load_state(const StateVector& sv) {
  SVSIM_CHECK(sv.n_qubits == n_, "state width mismatch");
  for (IdxType k = 0; k < dim_; ++k) {
    real_[static_cast<std::size_t>(k)] = sv.amps[static_cast<std::size_t>(k)].real();
    imag_[static_cast<std::size_t>(k)] = sv.amps[static_cast<std::size_t>(k)].imag();
  }
}

std::vector<IdxType> SingleSim::sample(IdxType shots) {
  results_.assign(static_cast<std::size_t>(shots), 0);
  mctx_.results = results_.data();
  mctx_.n_shots = shots;
  Circuit c(n_);
  c.measure_all();
  run(c);
  mctx_.results = nullptr;
  mctx_.n_shots = 0;
  return results_;
}

} // namespace svsim
