// CoarseMsgSim: the traditional MPI-style distributed baseline (§2.1/§6).
//
// This is the communication model the paper argues *against*: the state
// vector is partitioned across ranks, and whenever a gate touches a qubit
// above the partition boundary, ranks pack their whole partition into a
// message, exchange with the XOR partner(s) in a two-sided send/recv, and
// unpack before computing — coarse-grained transfers, per-gate
// synchronization, and no fine-grained overlap. Gates are applied as
// generic dense matrices with runtime dispatch (the Aer-style execution
// model distributed simulators of §6 use).
//
// Ranks are host threads connected by buffered mailboxes (the stand-in for
// MPI point-to-point; see DESIGN.md). Message counters record the traffic
// the machine model prices when contrasting coarse messaging with
// fine-grained SHMEM (bench_ablation_comm).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/aligned.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/simulator.hpp"
#include "ir/matrices.hpp"

namespace svsim {

/// Buffered point-to-point channel set for one receiving rank: messages
/// from each source are FIFO-ordered, like MPI with per-peer ordering.
class Mailbox {
public:
  /// `owner` is the receiving rank — the PE in-flight payload bytes are
  /// attributed to in the memory registry.
  explicit Mailbox(int n_ranks, int owner = -1)
      : owner_(owner), queues_(static_cast<std::size_t>(n_ranks)) {}

  ~Mailbox() {
    // Return any payloads still queued (a run torn down by an
    // exception) so the transient accounting balances.
    for (const auto& q : queues_) {
      for (const auto& buf : q) {
        obs::MemRegistry::global().adjust(
            obs::MemTag::kMailbox,
            -static_cast<std::int64_t>(buf.size() * sizeof(ValType)), owner_);
      }
    }
  }

  void send(int src, std::vector<ValType>&& buf) {
    // In-flight payload bytes live in this mailbox until the matching
    // recv; transient accounting (no stable address to NUMA-sample).
    obs::MemRegistry::global().adjust(
        obs::MemTag::kMailbox,
        static_cast<std::int64_t>(buf.size() * sizeof(ValType)), owner_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queues_[static_cast<std::size_t>(src)].push_back(std::move(buf));
    }
    cv_.notify_all();
  }

  std::vector<ValType> recv(int src) {
    // Blocked two-sided receive: the coarse tier's dominant wait. One
    // kTransfer span per message (inert when the thread isn't bound).
    obs::WaitScope wait(obs::WaitKind::kTransfer);
    std::unique_lock<std::mutex> lock(mutex_);
    auto& q = queues_[static_cast<std::size_t>(src)];
    cv_.wait(lock, [&] { return !q.empty(); });
    std::vector<ValType> buf = std::move(q.front());
    q.pop_front();
    lock.unlock();
    obs::MemRegistry::global().adjust(
        obs::MemTag::kMailbox,
        -static_cast<std::int64_t>(buf.size() * sizeof(ValType)), owner_);
    return buf;
  }

private:
  int owner_ = -1;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<std::vector<ValType>>> queues_;
};

/// Aggregate message-passing statistics for one run.
struct MsgStats {
  std::uint64_t messages = 0;     // point-to-point sends
  std::uint64_t bytes = 0;        // payload bytes sent
  std::uint64_t exchange_gates = 0; // gates that required communication
  std::uint64_t local_gates = 0;    // gates computed purely locally
  /// Payload bytes sent per destination rank (one row of the PE×PE
  /// traffic matrix; its sum equals `bytes`). Empty until a run sizes it.
  std::vector<std::uint64_t> per_dest_bytes;
};

class CoarseMsgSim final : public Simulator {
public:
  CoarseMsgSim(IdxType n_qubits, int n_ranks, SimConfig cfg = {});

  const char* name() const override { return "coarse-msg"; }
  IdxType n_qubits() const override { return n_; }
  int n_ranks() const { return n_ranks_; }
  void reset_state() override;
  void run(const Circuit& circuit) override;
  StateVector state() const override;
  void load_state(const StateVector& sv) override;
  const std::vector<IdxType>& cbits() const override { return cbits_; }
  std::vector<IdxType> sample(IdxType shots) override;

  MsgStats stats() const;

private:
  class Rank; // per-rank execution context (defined in the .cpp)

  void execute(const Circuit& circuit);

  IdxType n_;
  IdxType dim_;
  int n_ranks_;
  IdxType lg_part_;
  SimConfig cfg_;

  std::vector<obs::TrackedBuffer<ValType>> real_parts_;
  std::vector<obs::TrackedBuffer<ValType>> imag_parts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::vector<IdxType> cbits_;
  std::vector<IdxType> results_;
  /// Live logical→physical qubit layout (ir/remap). Empty = identity;
  /// persists across execute() calls so sample()'s internal measure-all
  /// run sees the permutation the previous circuit left behind.
  std::vector<IdxType> layout_;
  /// Flattened per-measure-all layout snapshots of the current execute().
  std::vector<IdxType> ma_layouts_;
  IdxType n_shots_ = 0;
  std::vector<Rng> rngs_;
  std::vector<MsgStats> stats_;
};

} // namespace svsim
