// ShmemSim: multi-node scale-out backend (§3.2.3, Listing 5).
//
// Each SHMEM processing element owns one simulator partition: the state
// vector is allocated in the symmetric heap (nvshmem_malloc), partitioned
// evenly by natural array order, and every amplitude access from a gate
// kernel is a one-sided fine-grained get/put ("double_g"/"double_p") with
// a barrier_all after each gate. The PE team is provided by the
// svsim::shmem runtime (DESIGN.md explains the substitution for
// OpenSHMEM/NVSHMEM); traffic counters record the exact local/remote
// communication volume the machine model prices for Figures 12-13.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/dispatch.hpp"
#include "core/simulator.hpp"
#include "core/space.hpp"
#include "shmem/shmem.hpp"

namespace svsim {

class ShmemSim final : public Simulator {
public:
  /// `heap_bytes` is the per-PE symmetric heap size; the default fits the
  /// partition of a state vector up to 2^26 amplitudes on 1 PE.
  ShmemSim(IdxType n_qubits, int n_pes, SimConfig cfg = {},
           std::size_t heap_bytes = 0);
  ~ShmemSim() override;

  const char* name() const override { return "shmem"; }
  IdxType n_qubits() const override { return n_; }
  int n_pes() const { return n_pes_; }
  void reset_state() override;
  void run(const Circuit& circuit) override;
  StateVector state() const override;
  void load_state(const StateVector& sv) override;
  const std::vector<IdxType>& cbits() const override { return cbits_; }
  std::vector<IdxType> sample(IdxType shots) override;

  /// Aggregate one-sided traffic of the last run() across PEs.
  shmem::TrafficStats traffic() const { return last_traffic_; }
  /// Per-PE counters of the last run() (index = PE id).
  const std::vector<shmem::TrafficStats>& per_pe_traffic() const {
    return runtime_.per_pe_traffic();
  }

private:
  void execute(const Circuit& circuit);

  IdxType n_;
  IdxType dim_;
  int n_pes_;
  IdxType lg_part_;
  SimConfig cfg_;

  shmem::Runtime runtime_;
  // Per-PE pointers into the symmetric allocation (valid for the lifetime
  // of the runtime arenas; allocated once in the constructor).
  std::vector<ValType*> real_sym_;
  std::vector<ValType*> imag_sym_;

  std::vector<IdxType> cbits_;
  std::vector<IdxType> results_;
  /// Live logical→physical qubit layout (ir/remap). Empty = identity;
  /// persists across execute() calls so sample()'s internal measure-all
  /// run sees the permutation the previous circuit left behind.
  std::vector<IdxType> layout_;
  /// Flattened per-measure-all layout snapshots of the current execute()
  /// (storage behind MeasureCtx::ma_layouts).
  std::vector<IdxType> ma_layouts_;
  MeasureCtx mctx_;
  std::vector<Rng> rngs_; // per-PE replicas, same seed
  shmem::TrafficStats last_traffic_;
  // Memory-registry ids of the per-PE arenas (registered externally:
  // the shmem layer itself cannot link the obs library).
  std::vector<std::uint64_t> mem_ids_;
};

} // namespace svsim
