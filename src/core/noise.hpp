// Stochastic Pauli noise injection (trajectory method).
//
// The paper's NISQ framing (§1) motivates simulation precisely because
// real devices carry high error rates; a state-vector simulator models
// such noise with stochastic trajectories: each execution samples Pauli
// errors after gates (depolarizing channel twirled to Paulis), and
// observable statistics are averaged over trajectories. This keeps the
// memory cost at 2^n (a density-matrix simulator would pay 4^n — the
// different tool the authors built in their prior work [41]).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/simulator.hpp"

namespace svsim {

struct NoiseModel {
  /// Depolarizing probability applied after every 1-qubit gate: with
  /// probability p1 one of {X, Y, Z} (uniform) hits the operand.
  ValType p1 = 0;
  /// After every 2-qubit gate: with probability p2 one of the 15
  /// non-identity two-qubit Paulis (uniform) hits the operand pair.
  ValType p2 = 0;

  bool enabled() const { return p1 > 0 || p2 > 0; }
};

/// One noisy trajectory: a copy of `in` with sampled Pauli errors
/// inserted after each unitary gate. Deterministic given the RNG state.
Circuit inject_pauli_noise(const Circuit& in, const NoiseModel& noise,
                           Rng& rng);

/// Average basis-state probabilities over `trajectories` noisy runs of
/// `circuit` on `sim` (which is reset per trajectory).
std::vector<ValType> noisy_probabilities(Simulator& sim,
                                         const Circuit& circuit,
                                         const NoiseModel& noise,
                                         int trajectories,
                                         std::uint64_t seed = 99);

/// Average fidelity of the noisy state against the ideal (noise-free)
/// state, over `trajectories` runs.
ValType noisy_fidelity(Simulator& sim, const Circuit& circuit,
                       const NoiseModel& noise, int trajectories,
                       std::uint64_t seed = 99);

} // namespace svsim
