// obs::perfmodel — analytic per-gate cost attribution for the roofline
// report.
//
// Every specialized kernel's footprint is known in closed form from the
// state dimension: a T gate rewrites only the |1> half of the amplitudes
// with 4 real ops each, H streams every pair with 8, CX permutes half the
// amplitudes with no arithmetic at all, and a blocked scheduler window
// (kernels/blocked.hpp) collapses its member gates' sweeps into at most
// one pass over the state. This module prices those footprints — expected
// amplitudes touched, bytes moved, real floating-point ops — per gate,
// per op kind, and per scheduled window, mirroring the actual kernel
// bodies in kernels/gates1q.hpp, gates2q.hpp and the phase-table paths.
//
// Counting conventions (tests/test_perfmodel.cpp pins these):
//  * one touched amplitude moves 32 bytes: 16 read + 16 written across
//    the split re/im arrays (measurement's probability scan is read-only
//    and priced at 16);
//  * a "flop" is one real add/sub/mul/negate, counted off the kernel body
//    (a complex multiply by a general phase is 6, H's butterfly is 8 per
//    pair, a dense 2x2 complex multiply is 28 per pair).
//
// fold_roofline() joins this model with the hardware-counter sample and
// the machine model's STREAM-style peak into RunReport::roofline — the
// achieved-GB/s / arithmetic-intensity / %-of-peak attribution the paper
// reasons with, plus the top worst-attainment gate kinds.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/schedule.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"

namespace svsim::obs {

/// Expected footprint of one gate on a 2^n state.
struct GateCost {
  double amps = 0;  // amplitudes read or written
  double bytes = 0; // memory traffic (32 per rewritten amp)
  double flops = 0; // real adds/subs/muls/negates
};

/// Footprint of `g`'s specialized kernel on an n-qubit state.
GateCost gate_cost(const Gate& g, IdxType n_qubits);

/// Per-op-kind accumulated footprint.
struct OpCost {
  std::uint64_t count = 0;
  double amps = 0;
  double bytes = 0;
  double flops = 0;
};

/// Footprint of one scheduled window. For blocked windows `bytes` is the
/// cache-blocked traffic: the member gates' sweeps collapse into at most
/// one full-state pass (min(32 * 2^n, per-gate sum) — a window of cheap
/// diagonals can undercut even a single sweep).
struct WindowCost {
  bool blocked = false;
  std::uint64_t gates = 0;
  double amps = 0;
  double bytes = 0;
  double flops = 0;
};

/// Whole-run expected footprint.
struct RunModel {
  bool enabled = false;
  double amps = 0;
  double bytes = 0;       // per-gate-loop traffic (no blocking)
  double bytes_sched = 0; // traffic under the schedule (== bytes when none)
  double flops = 0;
  std::array<OpCost, static_cast<std::size_t>(kNumOps)> by_op{};
  std::vector<WindowCost> windows; // empty when no schedule given
};

/// Price every gate of `circuit`; with a `schedule`, also price each
/// window and account cache blocking in bytes_sched.
RunModel model_run(const Circuit& circuit, const Schedule* schedule = nullptr);

/// Price a lockstep-batched run (BatchedSim): per-member footprint × B,
/// plus each gate's coefficient-row read once per sweep (the one
/// gate-table read B members amortize). batch <= 1 is model_run().
RunModel model_run_batched(const Circuit& circuit, const Schedule* schedule,
                           IdxType batch);

/// SVSIM_ROOFLINE from the environment: -1 unset, 0 off, 1 on. Read once.
int env_roofline();

/// Join model + counters + machine peak into `report.roofline`, compute
/// the worst-attainment op kinds (needs per-op profiled seconds), and —
/// when tracing is active — emit "model GB/s" / "LLC GB/s" counter-track
/// samples for the [t0_us, t1_us] gate-loop interval under the trace
/// process `process`. Requires report.wall_seconds to be final.
void fold_roofline(RunReport& report, const RunModel& model,
                   const CounterSample& counters, double peak_gbps,
                   const std::string& process, double t0_us, double t1_us);

} // namespace svsim::obs
