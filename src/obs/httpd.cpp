#include "obs/httpd.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

#include "common/logging.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/memtrack.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"

namespace svsim::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Internal Server Error";
}

void set_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = 2; // a stalled client cannot wedge the accept loop
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void write_response(int fd, int status, const std::string& content_type,
                    const std::string& body, const char* extra_header) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + ' ' +
                     status_text(status) + "\r\nContent-Type: " +
                     content_type + "\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n";
  if (extra_header != nullptr) {
    head += extra_header;
    head += "\r\n";
  }
  head += "\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

/// %.17g of a finite double, "null" otherwise — a NaN norm is exactly
/// what a tripped monitor reports, and bare `nan` is not JSON.
void json_double(char* buf, std::size_t len, double v) {
  if (std::isfinite(v)) {
    std::snprintf(buf, len, "%.17g", v);
  } else {
    std::snprintf(buf, len, "null");
  }
}

std::string healthz_json(const HealthSnapshot& h) {
  const char* status =
      !h.monitored ? "unmonitored" : h.tripped() ? "tripped" : "ok";
  char norm[40];
  char drift[40];
  json_double(norm, sizeof(norm), h.last_norm2);
  json_double(drift, sizeof(drift), h.max_drift);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"status\":\"%s\",\"monitored\":%s,\"checks\":%llu,"
                "\"nan_checks\":%llu,\"warns\":%llu,\"non_finite\":%llu,"
                "\"last_norm2\":%s,\"max_drift\":%s,\"aborted\":%s}\n",
                status, h.monitored ? "true" : "false",
                static_cast<unsigned long long>(h.checks),
                static_cast<unsigned long long>(h.nan_checks),
                static_cast<unsigned long long>(h.warns),
                static_cast<unsigned long long>(h.non_finite), norm, drift,
                h.aborted ? "true" : "false");
  return buf;
}

/// Best-effort partial svsim-report-v1 for a run still in flight: the
/// header fields and wall-so-far from the progress snapshot; every other
/// section carries its defaults.
std::string partial_report_json(const ProgressSnapshot& s) {
  RunReport r;
  r.backend = s.backend;
  r.n_qubits = static_cast<IdxType>(s.n_qubits);
  r.n_workers = s.n_workers;
  r.total_gates = s.gates_done;
  r.wall_seconds = s.elapsed_s;
  return to_json(r);
}

void handle_request(int fd, const std::string& method,
                    const std::string& path) {
  if (method != "GET") {
    write_response(fd, 405, "text/plain; charset=utf-8",
                   "only GET is supported\n", "Allow: GET");
    return;
  }
  if (path == "/metrics") {
    write_response(fd, 200, "text/plain; version=0.0.4; charset=utf-8",
                   Registry::global().write_prom(), nullptr);
    return;
  }
  if (path == "/healthz") {
    const HealthSnapshot h = health_snapshot();
    write_response(fd, h.monitored && h.tripped() ? 503 : 200,
                   "application/json", healthz_json(h), nullptr);
    return;
  }
  if (path == "/progress") {
    write_response(fd, 200, "application/json",
                   progress_to_json(ProgressBoard::global().snapshot()),
                   nullptr);
    return;
  }
  if (path == "/report") {
    const std::string full = ProgressBoard::global().last_report_json();
    if (!full.empty()) {
      write_response(fd, 200, "application/json", full, nullptr);
      return;
    }
    const ProgressSnapshot s = ProgressBoard::global().snapshot();
    if (!s.valid) {
      write_response(fd, 404, "text/plain; charset=utf-8",
                     "no run recorded yet\n", nullptr);
      return;
    }
    write_response(fd, 200, "application/json", partial_report_json(s),
                   "X-Svsim-Partial: 1");
    return;
  }
  if (path == "/memory") {
    // Sample synchronously so a scrape always carries fresh RSS/NUMA
    // numbers even between sampler ticks (or with the sampler idle).
    MemRegistry::global().sample_now();
    write_response(fd, 200, "application/json",
                   memory_json(MemRegistry::global().snapshot()), nullptr);
    return;
  }
  if (path == "/" || path.empty()) {
    write_response(fd, 200, "text/plain; charset=utf-8",
                   "svsim telemetry endpoints: /metrics /healthz /progress "
                   "/report /memory\n",
                   nullptr);
    return;
  }
  write_response(fd, 404, "text/plain; charset=utf-8", "not found\n",
                 nullptr);
}

} // namespace

Httpd& Httpd::global() {
  static Httpd* h = new Httpd(); // leak on purpose: outlive static dtors
  return *h;
}

Httpd::~Httpd() { stop(); }

bool Httpd::start(int port) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    log_warn("httpd: cannot bind 127.0.0.1:", port, " (", strerror(errno),
             "); telemetry endpoint disabled");
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  int actual = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    actual = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  port_.store(actual, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&Httpd::serve_loop, this);
  // The endpoint is what makes live progress observable; turn the
  // publishers on with it.
  ProgressBoard::global().set_enabled(true);
  return true;
}

void Httpd::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loop: shutdown() does it on Linux; the self-connect
  // covers platforms where a blocked accept ignores it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  const int wake = ::socket(AF_INET, SOCK_STREAM, 0);
  if (wake >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(port_.load(std::memory_order_acquire)));
    ::connect(wake, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(wake);
  }
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_.store(-1, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void Httpd::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break; // listener gone
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    set_timeouts(fd);
    // Read the request head (tiny GETs only; cap at 8 KiB).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t sp1 = req.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      write_response(fd, 400, "text/plain; charset=utf-8", "bad request\n",
                     nullptr);
    } else {
      handle_request(fd, req.substr(0, sp1),
                     req.substr(sp1 + 1, sp2 - sp1 - 1));
    }
    ::close(fd);
  }
}

bool maybe_start_httpd(int cfg_port) {
  const int port = cfg_port >= 0 ? cfg_port : env_http_port();
  if (port >= 0) {
    Httpd::global().start(port);
  } else if (env_progress()) {
    ProgressBoard::global().set_enabled(true);
  }
  const bool on = ProgressBoard::global().enabled();
  // A live-monitored run should also die gracefully: the Ctrl-C flush is
  // what turns a killed multi-hour run into a partial report instead of
  // nothing.
  if (on) install_shutdown_handlers();
  return on;
}

bool http_get(const std::string& host, int port, const std::string& path,
              int* status, std::string* body) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return false;
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
  ::freeaddrinfo(res);
  if (!ok) {
    if (fd >= 0) ::close(fd);
    return false;
  }
  set_timeouts(fd);
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  send_all(fd, req.data(), req.size());
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 200 OK\r\n..." — status is the second token.
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos || sp + 4 > resp.size()) return false;
  if (status != nullptr) *status = std::atoi(resp.c_str() + sp + 1);
  const std::size_t sep = resp.find("\r\n\r\n");
  if (body != nullptr) {
    *body = sep == std::string::npos ? std::string() : resp.substr(sep + 4);
  }
  return true;
}

} // namespace svsim::obs
