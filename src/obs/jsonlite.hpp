// Minimal JSON validator and value-tree parser (no external deps).
//
// Exists so the trace exporter, the bench JSON emitter, and the
// profile-smoke ctest can assert "this file is well-formed JSON" without
// pulling in a JSON library. Accepts exactly RFC 8259 grammar; on failure
// reports the byte offset of the first error. The Value tree (added for
// tools/svsim_analyze, which must *read* reports, traces and ledger
// lines, not just validate them) parses the same grammar into a small
// tagged struct; the original validator remains the zero-allocation fast
// path.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace svsim::obs::jsonlite {

namespace detail {

/// Containers may nest at most this deep. The recursive-descent parser
/// burns one C++ stack frame per level, so without a cap a hostile
/// `[[[[...` input (a few KB of brackets) overflows the stack instead of
/// returning false.
constexpr int kMaxDepth = 96;

struct Cursor {
  const std::string& s;
  std::size_t i = 0;
  int depth = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return eof() ? '\0' : s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++i;
    return true;
  }
  bool consume_lit(const char* lit) {
    std::size_t j = i;
    for (const char* p = lit; *p != '\0'; ++p, ++j) {
      if (j >= s.size() || s[j] != *p) return false;
    }
    i = j;
    return true;
  }
};

inline bool parse_value(Cursor& c);

/// RAII nesting counter shared by the validator and the tree builder.
struct DepthGuard {
  Cursor& c;
  explicit DepthGuard(Cursor& cur) : c(cur) { ++c.depth; }
  ~DepthGuard() { --c.depth; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;
  bool ok() const { return c.depth <= kMaxDepth; }
};

inline bool parse_string(Cursor& c) {
  if (!c.consume('"')) return false;
  while (!c.eof()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.eof()) return false;
      const char esc = c.s[c.i++];
      if (esc == 'u') {
        for (int k = 0; k < 4; ++k) {
          if (c.eof() || std::isxdigit(static_cast<unsigned char>(c.s[c.i])) == 0) {
            return false;
          }
          ++c.i;
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
  }
  return false; // unterminated
}

inline bool parse_number(Cursor& c) {
  const std::size_t start = c.i;
  c.consume('-');
  if (c.peek() == '0') {
    ++c.i;
  } else if (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) {
    while (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) ++c.i;
  } else {
    return false;
  }
  if (c.consume('.')) {
    if (std::isdigit(static_cast<unsigned char>(c.peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) ++c.i;
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    ++c.i;
    if (c.peek() == '+' || c.peek() == '-') ++c.i;
    if (std::isdigit(static_cast<unsigned char>(c.peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) ++c.i;
  }
  return c.i > start;
}

inline bool parse_object(Cursor& c) {
  if (!c.consume('{')) return false;
  const DepthGuard depth(c);
  if (!depth.ok()) return false;
  c.skip_ws();
  if (c.consume('}')) return true;
  while (true) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.consume(':')) return false;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume('}');
  }
}

inline bool parse_array(Cursor& c) {
  if (!c.consume('[')) return false;
  const DepthGuard depth(c);
  if (!depth.ok()) return false;
  c.skip_ws();
  if (c.consume(']')) return true;
  while (true) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume(']');
  }
}

inline bool parse_value(Cursor& c) {
  c.skip_ws();
  switch (c.peek()) {
    case '{': return parse_object(c);
    case '[': return parse_array(c);
    case '"': return parse_string(c);
    case 't': return c.consume_lit("true");
    case 'f': return c.consume_lit("false");
    case 'n': return c.consume_lit("null");
    default: return parse_number(c);
  }
}

} // namespace detail

/// True iff `text` is one complete, well-formed JSON value. On failure,
/// *error_offset (if non-null) is the byte position of the first error.
inline bool valid(const std::string& text, std::size_t* error_offset = nullptr) {
  detail::Cursor c{text};
  const bool ok = detail::parse_value(c);
  c.skip_ws();
  const bool done = ok && c.eof();
  if (!done && error_offset != nullptr) *error_offset = c.i;
  return done;
}

// ---------------------------------------------------------------------------
// Value tree
// ---------------------------------------------------------------------------

/// One parsed JSON value. Object members keep document order (the report
/// and ledger emitters write deterministic order, which keeps diffs and
/// tests stable).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> items;                           // kArray
  std::vector<std::pair<std::string, Value>> members; // kObject

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Typed getters with fallbacks (tolerant readers for additive schemas).
  double num_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  std::string str_or(const std::string& fallback) const {
    return type == Type::kString ? str : fallback;
  }
  bool bool_or(bool fallback) const {
    return type == Type::kBool ? boolean : fallback;
  }
  double member_num(const std::string& key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr ? v->num_or(fallback) : fallback;
  }
  std::string member_str(const std::string& key,
                         const std::string& fallback) const {
    const Value* v = find(key);
    return v != nullptr ? v->str_or(fallback) : fallback;
  }
};

namespace detail {

inline bool build_value(Cursor& c, Value* out);

/// Append a Unicode code point as UTF-8.
inline void append_utf8(std::string* s, std::uint32_t cp) {
  if (cp < 0x80) {
    s->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

inline bool hex4(Cursor& c, std::uint32_t* out) {
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) {
    if (c.eof()) return false;
    const char ch = c.s[c.i];
    std::uint32_t d;
    if (ch >= '0' && ch <= '9') {
      d = static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      d = static_cast<std::uint32_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      d = static_cast<std::uint32_t>(ch - 'A' + 10);
    } else {
      return false;
    }
    v = v * 16 + d;
    ++c.i;
  }
  *out = v;
  return true;
}

inline bool build_string(Cursor& c, std::string* out) {
  if (!c.consume('"')) return false;
  out->clear();
  while (!c.eof()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c.eof()) return false;
    const char esc = c.s[c.i++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        std::uint32_t cp = 0;
        if (!hex4(c, &cp)) return false;
        if (cp >= 0xD800 && cp <= 0xDBFF && c.i + 1 < c.s.size() &&
            c.s[c.i] == '\\' && c.s[c.i + 1] == 'u') {
          // Surrogate pair.
          const std::size_t save = c.i;
          c.i += 2;
          std::uint32_t lo = 0;
          if (hex4(c, &lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            c.i = save; // lone high surrogate: emit as-is
          }
        }
        append_utf8(out, cp);
        break;
      }
      default: return false;
    }
  }
  return false; // unterminated
}

inline bool build_object(Cursor& c, Value* out) {
  if (!c.consume('{')) return false;
  const DepthGuard depth(c);
  if (!depth.ok()) return false;
  out->type = Value::Type::kObject;
  c.skip_ws();
  if (c.consume('}')) return true;
  while (true) {
    c.skip_ws();
    std::string key;
    if (!build_string(c, &key)) return false;
    c.skip_ws();
    if (!c.consume(':')) return false;
    Value v;
    if (!build_value(c, &v)) return false;
    out->members.emplace_back(std::move(key), std::move(v));
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume('}');
  }
}

inline bool build_array(Cursor& c, Value* out) {
  if (!c.consume('[')) return false;
  const DepthGuard depth(c);
  if (!depth.ok()) return false;
  out->type = Value::Type::kArray;
  c.skip_ws();
  if (c.consume(']')) return true;
  while (true) {
    Value v;
    if (!build_value(c, &v)) return false;
    out->items.push_back(std::move(v));
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume(']');
  }
}

inline bool build_value(Cursor& c, Value* out) {
  c.skip_ws();
  switch (c.peek()) {
    case '{': return build_object(c, out);
    case '[': return build_array(c, out);
    case '"':
      out->type = Value::Type::kString;
      return build_string(c, &out->str);
    case 't':
      out->type = Value::Type::kBool;
      out->boolean = true;
      return c.consume_lit("true");
    case 'f':
      out->type = Value::Type::kBool;
      out->boolean = false;
      return c.consume_lit("false");
    case 'n':
      out->type = Value::Type::kNull;
      return c.consume_lit("null");
    default: {
      const std::size_t start = c.i;
      if (!parse_number(c)) return false;
      out->type = Value::Type::kNumber;
      out->number = std::strtod(c.s.substr(start, c.i - start).c_str(), nullptr);
      return true;
    }
  }
}

} // namespace detail

/// Parse one complete JSON value into a tree. Same grammar as valid();
/// on failure *error_offset (if non-null) is the first bad byte.
inline bool parse(const std::string& text, Value* out,
                  std::size_t* error_offset = nullptr) {
  *out = Value{};
  detail::Cursor c{text};
  const bool ok = detail::build_value(c, out);
  c.skip_ws();
  const bool done = ok && c.eof();
  if (!done && error_offset != nullptr) *error_offset = c.i;
  return done;
}

} // namespace svsim::obs::jsonlite
