// Minimal JSON validator (no value tree, no external deps).
//
// Exists so the trace exporter, the bench JSON emitter, and the
// profile-smoke ctest can assert "this file is well-formed JSON" without
// pulling in a JSON library. Accepts exactly RFC 8259 grammar; on failure
// reports the byte offset of the first error.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace svsim::obs::jsonlite {

namespace detail {

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return eof() ? '\0' : s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++i;
    return true;
  }
  bool consume_lit(const char* lit) {
    std::size_t j = i;
    for (const char* p = lit; *p != '\0'; ++p, ++j) {
      if (j >= s.size() || s[j] != *p) return false;
    }
    i = j;
    return true;
  }
};

inline bool parse_value(Cursor& c);

inline bool parse_string(Cursor& c) {
  if (!c.consume('"')) return false;
  while (!c.eof()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.eof()) return false;
      const char esc = c.s[c.i++];
      if (esc == 'u') {
        for (int k = 0; k < 4; ++k) {
          if (c.eof() || std::isxdigit(static_cast<unsigned char>(c.s[c.i])) == 0) {
            return false;
          }
          ++c.i;
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
  }
  return false; // unterminated
}

inline bool parse_number(Cursor& c) {
  const std::size_t start = c.i;
  c.consume('-');
  if (c.peek() == '0') {
    ++c.i;
  } else if (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) {
    while (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) ++c.i;
  } else {
    return false;
  }
  if (c.consume('.')) {
    if (std::isdigit(static_cast<unsigned char>(c.peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) ++c.i;
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    ++c.i;
    if (c.peek() == '+' || c.peek() == '-') ++c.i;
    if (std::isdigit(static_cast<unsigned char>(c.peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek())) != 0) ++c.i;
  }
  return c.i > start;
}

inline bool parse_object(Cursor& c) {
  if (!c.consume('{')) return false;
  c.skip_ws();
  if (c.consume('}')) return true;
  while (true) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.consume(':')) return false;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume('}');
  }
}

inline bool parse_array(Cursor& c) {
  if (!c.consume('[')) return false;
  c.skip_ws();
  if (c.consume(']')) return true;
  while (true) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.consume(',')) continue;
    return c.consume(']');
  }
}

inline bool parse_value(Cursor& c) {
  c.skip_ws();
  switch (c.peek()) {
    case '{': return parse_object(c);
    case '[': return parse_array(c);
    case '"': return parse_string(c);
    case 't': return c.consume_lit("true");
    case 'f': return c.consume_lit("false");
    case 'n': return c.consume_lit("null");
    default: return parse_number(c);
  }
}

} // namespace detail

/// True iff `text` is one complete, well-formed JSON value. On failure,
/// *error_offset (if non-null) is the byte position of the first error.
inline bool valid(const std::string& text, std::size_t* error_offset = nullptr) {
  detail::Cursor c{text};
  const bool ok = detail::parse_value(c);
  c.skip_ws();
  const bool done = ok && c.eof();
  if (!done && error_offset != nullptr) *error_offset = c.i;
  return done;
}

} // namespace svsim::obs::jsonlite
