#include "obs/perfmodel.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/bits.hpp"
#include "obs/trace.hpp"

namespace svsim::obs {

GateCost gate_cost(const Gate& g, IdxType n_qubits) {
  const double dim = static_cast<double>(pow2(n_qubits));
  const double P = dim / 2; // 1-qubit pairs == |1>-half amplitudes
  const double Q = dim / 4; // 2-qubit quadruples
  // Rewritten amplitudes move 32 bytes each (16 read + 16 written).
  auto rw = [](double amps, double flops) {
    return GateCost{amps, amps * 32.0, flops};
  };
  switch (g.op) {
    case OP::ID:
    case OP::BARRIER:
      return {};
    // --- 1-qubit, all pairs ---
    case OP::X:
      return rw(dim, 0); // pure pair swap, no arithmetic
    case OP::Y:
      return rw(dim, 2 * P); // swap + one negation per output
    case OP::H:
      return rw(dim, 8 * P); // butterfly: 2 adds + 2 muls per component
    case OP::RX:
    case OP::RY:
      return rw(dim, 12 * P); // 2 real-coefficient complex scales + adds
    case OP::RZ:
      return rw(dim, 12 * P); // phase multiply (6) on both halves
    case OP::U2:
    case OP::U3:
      return rw(dim, 28 * P); // dense complex 2x2 per pair
    // --- 1-qubit diagonal, |1> half only ---
    case OP::Z:
      return rw(P, 2 * P); // negate re+im
    case OP::S:
    case OP::SDG:
      return rw(P, P); // component swap + one negation
    case OP::T:
    case OP::TDG:
      return rw(P, 4 * P); // s*(re∓im), s*(re±im)
    case OP::U1:
      return rw(P, 6 * P); // general phase multiply
    // --- 2-qubit, control-selected half ---
    case OP::CX:
      return rw(P, 0); // controlled pair swap
    case OP::CY:
      return rw(P, 2 * Q);
    case OP::CH:
    case OP::CRX:
    case OP::CRY:
    case OP::CU3:
      return rw(P, 28 * Q); // dense 2x2 on the controlled pair
    case OP::CRZ:
      return rw(P, 12 * Q);
    case OP::SWAP:
      return rw(P, 0); // |01> <-> |10> exchange
    // --- 2-qubit diagonal ---
    case OP::CZ:
      return rw(Q, 2 * Q); // |11> element negated
    case OP::CU1:
      return rw(Q, 6 * Q); // |11> element phase-multiplied
    case OP::RZZ:
      return rw(P, 12 * Q); // parity-split phase on half the amps
    case OP::RXX:
      return rw(dim, 24 * Q); // cos/sin cross-coupling on every quad
    // --- non-unitary ---
    case OP::M:
    case OP::RESET: {
      // Phase 1: read-only probability scan of the |1> half
      // (re^2 + im^2 accumulated: 16 bytes, 4 flops per amp); phase 3:
      // renormalizing collapse pass over the full state (32 bytes, 2
      // flops per amp). The reduction between them is worker-count
      // bound, not state-size bound, and is not priced.
      GateCost c;
      c.amps = dim;
      c.bytes = 16.0 * P + 32.0 * dim;
      c.flops = 4.0 * P + 2.0 * dim;
      return c;
    }
    case OP::MA: {
      // Prefix-sum sampling: read passes over the magnitudes.
      GateCost c;
      c.amps = dim;
      c.bytes = 16.0 * dim;
      c.flops = 4.0 * dim;
      return c;
    }
    default:
      // Compound controlled ops (CCX..C4X) are decomposed before they
      // reach a kernel; if one is priced directly, use a dense estimate.
      return rw(dim, 28 * P);
  }
}

RunModel model_run(const Circuit& circuit, const Schedule* schedule) {
  RunModel m;
  m.enabled = true;
  const IdxType n = circuit.n_qubits();
  const auto& gates = circuit.gates();
  for (const Gate& g : gates) {
    const GateCost c = gate_cost(g, n);
    m.amps += c.amps;
    m.bytes += c.bytes;
    m.flops += c.flops;
    OpCost& oc = m.by_op[static_cast<std::size_t>(g.op)];
    ++oc.count;
    oc.amps += c.amps;
    oc.bytes += c.bytes;
    oc.flops += c.flops;
  }
  if (schedule == nullptr || schedule->windows.empty()) {
    m.bytes_sched = m.bytes;
    return m;
  }
  const double sweep = 32.0 * static_cast<double>(pow2(n));
  m.windows.reserve(schedule->windows.size());
  for (const Window& w : schedule->windows) {
    WindowCost wc;
    wc.blocked = w.blocked;
    wc.gates = static_cast<std::uint64_t>(w.n_gates);
    for (IdxType i = w.first_gate; i < w.first_gate + w.n_gates; ++i) {
      const GateCost c = gate_cost(gates[static_cast<std::size_t>(i)], n);
      wc.amps += c.amps;
      wc.bytes += c.bytes;
      wc.flops += c.flops;
    }
    // A blocked window streams the state at most once, however many
    // gates it carries; a run of cheap diagonals can undercut even that.
    if (w.blocked) wc.bytes = std::min(wc.bytes, sweep);
    m.bytes_sched += wc.bytes;
    m.windows.push_back(wc);
  }
  return m;
}

RunModel model_run_batched(const Circuit& circuit, const Schedule* schedule,
                           IdxType batch) {
  RunModel m = model_run(circuit, schedule);
  if (batch <= 1) return m;
  const double B = static_cast<double>(batch);
  // Amplitude traffic and arithmetic scale by the member count: every
  // sweep streams B lockstep state vectors.
  m.amps *= B;
  m.bytes *= B;
  m.bytes_sched *= B;
  m.flops *= B;
  for (OpCost& oc : m.by_op) {
    oc.amps *= B;
    oc.bytes *= B;
    oc.flops *= B;
  }
  for (WindowCost& wc : m.windows) {
    wc.amps *= B;
    wc.bytes *= B;
    wc.flops *= B;
  }
  // Gate-table reads are amortized: the batched kernels read each gate's
  // per-member coefficient rows once per sweep — 8 bytes per row per
  // member, independent of the state dimension — instead of re-deriving
  // the entries per solo run. Priced per gate, not per member pass.
  const auto coef_rows = [](OP op) {
    switch (op) {
      case OP::U3:
      case OP::U2:
      case OP::CU3:
      case OP::CRX:
      case OP::CRY:
      case OP::CH:
        return 8;
      case OP::U1:
      case OP::RZ:
      case OP::RX:
      case OP::RY:
      case OP::CRZ:
      case OP::CU1:
      case OP::RXX:
      case OP::RZZ:
        return 2;
      default:
        return 0;
    }
  };
  for (const Gate& g : circuit.gates()) {
    const double table_bytes = 8.0 * coef_rows(g.op) * B;
    m.bytes += table_bytes;
    m.bytes_sched += table_bytes;
    m.by_op[static_cast<std::size_t>(g.op)].bytes += table_bytes;
  }
  return m;
}

int env_roofline() {
  static const int v = [] {
    const char* e = std::getenv("SVSIM_ROOFLINE");
    if (e == nullptr || *e == '\0') return -1;
    return std::atoi(e) != 0 ? 1 : 0;
  }();
  return v;
}

void fold_roofline(RunReport& report, const RunModel& model,
                   const CounterSample& counters, double peak_gbps,
                   const std::string& process, double t0_us, double t1_us) {
  RooflineStats& r = report.roofline;
  r.enabled = true;
  r.model_amps = model.amps;
  r.model_bytes = model.bytes;
  r.model_bytes_sched = model.bytes_sched;
  r.model_flops = model.flops;
  r.ai = model.bytes_sched > 0 ? model.flops / model.bytes_sched : 0;
  r.peak_gbps = peak_gbps;
  const double wall = report.wall_seconds;
  if (wall > 0) r.model_gbps = model.bytes_sched / wall / 1e9;
  if (peak_gbps > 0) r.attainment = r.model_gbps / peak_gbps;

  r.counters = counters.available;
  r.counters_error = counters.error;
  if (counters.available) {
    r.cycles = counters.cycles;
    r.instructions = counters.instructions;
    r.llc_loads = counters.llc_loads;
    r.llc_misses = counters.llc_misses;
    // Every LLC miss moves one 64-byte line from memory — the
    // counter-side view of achieved bandwidth (≈0 when the state fits
    // in cache, which is itself diagnostic).
    if (wall > 0) {
      r.measured_gbps =
          static_cast<double>(counters.llc_misses) * 64.0 / wall / 1e9;
    }
  }

  // Worst-attainment op kinds need per-op seconds, i.e. a profiled run.
  // Per-op seconds are CPU-seconds summed over workers; apportion by the
  // worker count to compare against the whole-machine roofline.
  if (report.profiled && peak_gbps > 0) {
    std::vector<RooflineStats::OpAttainment> v;
    const double workers =
        static_cast<double>(report.n_workers > 0 ? report.n_workers : 1);
    for (std::size_t i = 0; i < static_cast<std::size_t>(kNumOps); ++i) {
      const OpCost& oc = model.by_op[i];
      const GateKindStats& gs = report.by_op[i];
      if (oc.count == 0 || gs.seconds <= 0 || oc.bytes <= 0) continue;
      RooflineStats::OpAttainment a;
      a.op = static_cast<OP>(i);
      a.count = oc.count;
      a.bytes = oc.bytes;
      a.seconds = gs.seconds / workers;
      a.gbps = a.bytes / a.seconds / 1e9;
      a.attainment = a.gbps / peak_gbps;
      v.push_back(a);
    }
    std::sort(v.begin(), v.end(), [](const auto& x, const auto& y) {
      return x.attainment < y.attainment;
    });
    if (v.size() > 10) v.resize(10);
    r.worst = std::move(v);
  }

  // Counter track in the Chrome trace: a step function over the gate
  // loop interval, one track per metric.
  Trace& tr = Trace::global();
  if (tr.enabled() && t1_us > t0_us) {
    tr.flush_counter(process, "model GB/s", t0_us, r.model_gbps);
    tr.flush_counter(process, "model GB/s", t1_us, 0.0);
    if (r.counters) {
      tr.flush_counter(process, "LLC GB/s", t0_us, r.measured_gbps);
      tr.flush_counter(process, "LLC GB/s", t1_us, 0.0);
    }
  }
}

} // namespace svsim::obs
