// obs::to_json — RunReport as RFC 8259 JSON (schema "svsim-report-v1").
//
// Hand-rolled emitter kept next to the report type on purpose: jsonlite
// stays a pure validator, and the schema is small enough that a builder
// library would be more code than the emitter. Non-finite doubles are
// emitted as null so the output always validates.
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/report.hpp"

namespace svsim::obs {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null"; // NaN/Inf are not JSON; null keeps the document valid
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void append_u64(std::ostringstream& os, std::uint64_t v) {
  os << static_cast<unsigned long long>(v);
}

} // namespace

std::string to_json(const RunReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"svsim-report-v1\",";
  os << "\"backend\":";
  append_escaped(os, report.backend);
  os << ",\"n_qubits\":" << static_cast<long long>(report.n_qubits);
  os << ",\"n_workers\":" << report.n_workers;
  os << ",\"batch\":" << report.batch;
  os << ",\"total_gates\":";
  append_u64(os, report.total_gates);
  os << ",\"wall_seconds\":";
  append_double(os, report.wall_seconds);
  os << ",\"profiled\":" << (report.profiled ? "true" : "false");
  os << ",\"circuit_hash\":";
  append_escaped(os, hash_hex(report.circuit_hash));
  os << ",\"cpu\":";
  append_escaped(os, cpu_model());

  os << ",\"gates\":[";
  bool first = true;
  for (int i = 0; i < kNumOps; ++i) {
    const GateKindStats& s = report.by_op[static_cast<std::size_t>(i)];
    if (s.count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"op\":";
    append_escaped(os, op_name(static_cast<OP>(i)));
    os << ",\"count\":";
    append_u64(os, s.count);
    os << ",\"seconds\":";
    append_double(os, s.seconds);
    os << '}';
  }
  os << ']';

  os << ",\"fusion\":{\"gates_before\":"
     << static_cast<long long>(report.fusion.gates_before)
     << ",\"gates_after\":" << static_cast<long long>(report.fusion.gates_after)
     << ",\"fused_1q\":" << static_cast<long long>(report.fusion.fused_1q)
     << ",\"cancelled_2q\":"
     << static_cast<long long>(report.fusion.cancelled_2q)
     << ",\"dropped_identity\":"
     << static_cast<long long>(report.fusion.dropped_identity) << '}';

  os << ",\"comm\":{\"local_ops\":";
  append_u64(os, report.comm.local_ops);
  os << ",\"remote_ops\":";
  append_u64(os, report.comm.remote_ops);
  os << ",\"bytes\":";
  append_u64(os, report.comm.bytes);
  os << ",\"messages\":";
  append_u64(os, report.comm.messages);
  os << ",\"barriers\":";
  append_u64(os, report.comm.barriers);
  os << '}';

  const HealthStats& h = report.health;
  os << ",\"health\":{\"enabled\":" << (h.enabled ? "true" : "false")
     << ",\"every_n\":" << h.every_n << ",\"checks\":";
  append_u64(os, h.checks);
  os << ",\"nan_checks\":";
  append_u64(os, h.nan_checks);
  os << ",\"non_finite\":";
  append_u64(os, h.non_finite);
  os << ",\"max_drift\":";
  append_double(os, h.max_drift);
  os << ",\"last_norm2\":";
  append_double(os, h.last_norm2);
  os << ",\"drift_gate_lo\":";
  append_u64(os, h.drift_gate_lo);
  os << ",\"drift_gate_hi\":";
  append_u64(os, h.drift_gate_hi);
  os << ",\"warns\":";
  append_u64(os, h.warns);
  os << ",\"aborted\":" << (h.aborted ? "true" : "false")
     << ",\"tripped\":" << (h.tripped() ? "true" : "false") << '}';

  const SchedulerStats& sc = report.sched;
  os << ",\"sched\":{\"enabled\":" << (sc.enabled ? "true" : "false")
     << ",\"active\":" << (sc.active ? "true" : "false")
     << ",\"block_exp\":" << sc.block_exp << ",\"windows\":";
  append_u64(os, sc.windows);
  os << ",\"windowed_gates\":";
  append_u64(os, sc.windowed_gates);
  os << ",\"passes_saved\":";
  append_u64(os, sc.passes_saved);
  os << ",\"traffic_avoided_bytes\":";
  append_u64(os, sc.traffic_avoided_bytes);
  os << '}';

  const RemapStats& rm = report.remap;
  os << ",\"remap\":{\"enabled\":" << (rm.enabled ? "true" : "false")
     << ",\"active\":" << (rm.active ? "true" : "false")
     << ",\"local_bits\":" << rm.local_bits << ",\"swaps_inserted\":";
  append_u64(os, rm.swaps_inserted);
  os << ",\"modeled_remote_bytes_before\":";
  append_u64(os, rm.modeled_remote_bytes_before);
  os << ",\"modeled_remote_bytes_after\":";
  append_u64(os, rm.modeled_remote_bytes_after);
  os << '}';

  const RooflineStats& rf = report.roofline;
  os << ",\"roofline\":{\"enabled\":" << (rf.enabled ? "true" : "false")
     << ",\"model\":{\"amps\":";
  append_double(os, rf.model_amps);
  os << ",\"bytes\":";
  append_double(os, rf.model_bytes);
  os << ",\"bytes_sched\":";
  append_double(os, rf.model_bytes_sched);
  os << ",\"flops\":";
  append_double(os, rf.model_flops);
  os << ",\"ai\":";
  append_double(os, rf.ai);
  os << "},\"peak_gbps\":";
  append_double(os, rf.peak_gbps);
  os << ",\"model_gbps\":";
  append_double(os, rf.model_gbps);
  os << ",\"attainment\":";
  append_double(os, rf.attainment);
  os << ",\"counters\":{\"available\":" << (rf.counters ? "true" : "false")
     << ",\"error\":";
  append_escaped(os, rf.counters_error);
  os << ",\"cycles\":";
  append_u64(os, rf.cycles);
  os << ",\"instructions\":";
  append_u64(os, rf.instructions);
  os << ",\"llc_loads\":";
  append_u64(os, rf.llc_loads);
  os << ",\"llc_misses\":";
  append_u64(os, rf.llc_misses);
  os << ",\"measured_gbps\":";
  append_double(os, rf.measured_gbps);
  os << "},\"worst\":[";
  for (std::size_t i = 0; i < rf.worst.size(); ++i) {
    const RooflineStats::OpAttainment& a = rf.worst[i];
    if (i != 0) os << ',';
    os << "{\"op\":";
    append_escaped(os, op_name(a.op));
    os << ",\"count\":";
    append_u64(os, a.count);
    os << ",\"bytes\":";
    append_double(os, a.bytes);
    os << ",\"seconds\":";
    append_double(os, a.seconds);
    os << ",\"gbps\":";
    append_double(os, a.gbps);
    os << ",\"attainment\":";
    append_double(os, a.attainment);
    os << '}';
  }
  os << "]}";

  const MemoryStats& mm = report.memory;
  os << ",\"memory\":{\"enabled\":" << (mm.enabled ? "true" : "false")
     << ",\"tracked_bytes\":";
  append_u64(os, mm.tracked_bytes);
  os << ",\"tracked_peak\":";
  append_u64(os, mm.tracked_peak);
  os << ",\"peak_ts_us\":";
  append_double(os, mm.peak_ts_us);
  os << ",\"tags\":[";
  for (std::size_t i = 0; i < mm.tags.size(); ++i) {
    const MemoryStats::Tag& t = mm.tags[i];
    if (i != 0) os << ',';
    os << "{\"tag\":";
    append_escaped(os, t.name);
    os << ",\"current\":";
    append_u64(os, t.current);
    os << ",\"peak\":";
    append_u64(os, t.peak);
    os << '}';
  }
  os << "],\"per_pe\":[";
  for (std::size_t i = 0; i < mm.per_pe.size(); ++i) {
    const MemoryStats::Pe& p = mm.per_pe[i];
    if (i != 0) os << ',';
    os << "{\"pe\":" << p.pe << ",\"current\":";
    append_u64(os, p.current);
    os << ",\"peak\":";
    append_u64(os, p.peak);
    os << ",\"node\":" << p.node << '}';
  }
  os << "],\"sampled\":" << (mm.sampled ? "true" : "false")
     << ",\"sample_error\":";
  append_escaped(os, mm.sample_error);
  os << ",\"rss_bytes\":";
  append_u64(os, mm.rss_bytes);
  os << ",\"peak_rss\":";
  append_u64(os, mm.peak_rss);
  os << ",\"baseline_rss\":";
  append_u64(os, mm.baseline_rss);
  os << ",\"thp_bytes\":";
  append_u64(os, mm.thp_bytes);
  os << ",\"samples\":";
  append_u64(os, mm.samples);
  os << ",\"numa\":" << (mm.numa ? "true" : "false") << ",\"numa_error\":";
  append_escaped(os, mm.numa_error);
  os << ",\"node_bytes\":[";
  for (std::size_t i = 0; i < mm.node_bytes.size(); ++i) {
    if (i != 0) os << ',';
    append_u64(os, mm.node_bytes[i]);
  }
  os << "],\"estimated_bytes\":";
  append_double(os, mm.estimated_bytes);
  os << ",\"estimate_error\":";
  append_double(os, mm.estimate_error());
  os << '}';

  const WaitProfile& ws = report.waitstate;
  os << ",\"waitstate\":{\"enabled\":" << (ws.enabled ? "true" : "false")
     << ",\"per_pe\":[";
  for (std::size_t w = 0; w < ws.per_pe.size(); ++w) {
    const WaitProfile::PerPe& pe = ws.per_pe[w];
    if (w != 0) os << ',';
    os << "{\"wall_s\":";
    append_double(os, pe.wall_s);
    os << ",\"compute_s\":";
    append_double(os, pe.compute_s);
    os << ",\"barrier_s\":";
    append_double(os, pe.barrier_s);
    os << ",\"reduction_s\":";
    append_double(os, pe.reduction_s);
    os << ",\"transfer_s\":";
    append_double(os, pe.transfer_s);
    os << ",\"wait_s\":";
    append_double(os, pe.wait_s());
    os << ",\"barrier_n\":";
    append_u64(os, pe.barrier_n);
    os << ",\"reduction_n\":";
    append_u64(os, pe.reduction_n);
    os << ",\"transfer_n\":";
    append_u64(os, pe.transfer_n);
    os << '}';
  }
  os << "],\"imbalance\":";
  append_double(os, ws.imbalance);
  os << ",\"straggler\":" << ws.straggler << ",\"wait_fraction\":";
  append_double(os, ws.wait_fraction);
  os << ",\"truncated\":" << (ws.truncated ? "true" : "false")
     << ",\"critical_pe\":" << ws.critical_pe << ",\"critical_phase\":";
  append_escaped(os, ws.critical_phase);
  os << ",\"critical_s\":";
  append_double(os, ws.critical_s);
  os << ",\"critical\":[";
  for (std::size_t i = 0; i < ws.critical.size(); ++i) {
    const WaitProfile::Critical& c = ws.critical[i];
    if (i != 0) os << ',';
    os << "{\"pe\":" << c.pe << ",\"phase\":";
    append_escaped(os, c.phase);
    os << ",\"seconds\":";
    append_double(os, c.seconds);
    os << ",\"phases\":";
    append_u64(os, c.phases);
    os << '}';
  }
  os << "]}";

  if (report.matrix.empty()) {
    os << ",\"traffic_matrix\":null";
  } else {
    const TrafficMatrix& m = report.matrix;
    const TrafficMatrix::Imbalance im = m.imbalance();
    os << ",\"traffic_matrix\":{\"n\":" << m.n << ",\"bytes\":[";
    for (int s = 0; s < m.n; ++s) {
      if (s != 0) os << ',';
      os << '[';
      for (int d = 0; d < m.n; ++d) {
        if (d != 0) os << ',';
        append_u64(os, m.at(s, d));
      }
      os << ']';
    }
    os << "],\"per_pe_bytes\":[";
    for (int s = 0; s < m.n; ++s) {
      if (s != 0) os << ',';
      append_u64(os, m.row_sum(s));
    }
    os << "],\"total_bytes\":";
    append_u64(os, m.total());
    os << ",\"remote_bytes\":";
    append_u64(os, m.remote_total());
    os << ",\"max_mean_ratio\":";
    append_double(os, im.max_mean_ratio);
    os << ",\"busiest\":{\"src\":" << im.busiest_src
       << ",\"dst\":" << im.busiest_dst << ",\"bytes\":";
    append_u64(os, im.busiest_bytes);
    os << "}}";
  }

  os << ",\"flight\":{\"count\":" << report.flight.size() << ",\"events\":[";
  // Cap the exported tail: the rings retain up to 256 events per worker,
  // far more than a report reader wants inline.
  constexpr std::size_t kMaxExported = 128;
  const std::size_t start =
      report.flight.size() > kMaxExported ? report.flight.size() - kMaxExported
                                          : 0;
  for (std::size_t i = start; i < report.flight.size(); ++i) {
    const FlightEvent& e = report.flight[i];
    if (i != start) os << ',';
    os << "{\"seq\":";
    append_u64(os, e.seq);
    os << ",\"ts_us\":";
    append_double(os, e.ts_us);
    os << ",\"kind\":";
    append_escaped(os, flight_kind_name(static_cast<FlightEvent::Kind>(e.kind)));
    os << ",\"gate\":";
    append_u64(os, e.gate_id);
    os << ",\"op\":";
    append_escaped(os, e.op < static_cast<std::uint16_t>(kNumOps)
                           ? op_name(static_cast<OP>(e.op))
                           : "?");
    os << ",\"worker\":" << e.worker << ",\"qb\":[" << e.qb0 << ',' << e.qb1
       << "]}";
  }
  os << "]}}";
  return os.str();
}

} // namespace svsim::obs
