// obs wait-state attribution — the header-only instrumentation layer the
// synchronization primitives drop spans into.
//
// The PGAS pitch of the paper is that one-sided communication shrinks the
// *exposed* synchronization cost at scale; this layer measures exactly
// that. Every blocking primitive on the distributed tiers — barrier
// arrival (shmem::Barrier), collective reductions (all_gather /
// all_reduce / PeerSpace::reduce_sum), block transfers (Ctx::get/put,
// broadcast) and two-sided receives (coarse Mailbox::recv) — wraps itself
// in a WaitScope. Scopes record into a thread-bound per-PE WaitTrack;
// per-PE compute time is then derived as (PE busy window − PE wait time),
// which makes the compute/comm/wait breakdown sum to each PE's wall time
// by construction. obs/aggregate clock-aligns the tracks and folds them
// into the cross-PE profile (imbalance, straggler, critical path).
//
// Layering: this header is included by src/shmem (which cannot link the
// obs library — svsim_obs itself links svsim_shmem), so everything here
// is inline/header-only and the microsecond clock lives here too;
// obs/trace.cpp forwards trace_now_us() to the same epoch so wait spans
// and Chrome-trace gate spans share one timeline.
//
// Cost discipline: only *synchronization-frequency* paths are
// instrumented (per gate / per collective, never per amplitude — the
// SHMEM scalar g/p stay untouched), and an unbound thread pays one
// thread_local load and a predictable branch per scope. Nested scopes
// are suppressed so a reduction built from barriers records one
// kReduction span, not three kBarrier ones.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "obs/progress.hpp" // inline slot hook only; no obs-library linkage

namespace svsim::obs {

/// Microseconds since the process observability epoch (steady clock).
/// One epoch program-wide: the function-local static in this inline
/// function is shared across every TU, including shmem and obs.
inline double wait_now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// The wait-state taxonomy (DESIGN.md §8): time a PE spends blocked, by
/// cause. Everything else inside the PE's busy window is compute.
enum class WaitKind : int {
  kBarrier = 0,   // blocked at a global barrier (straggler exposure)
  kReduction = 1, // blocked inside a collective reduction/gather
  kTransfer = 2,  // blocked on data movement (block get/put, recv)
};
inline constexpr int kNumWaitKinds = 3;

inline const char* wait_kind_name(WaitKind k) {
  switch (k) {
    case WaitKind::kBarrier: return "barrier";
    case WaitKind::kReduction: return "reduction";
    case WaitKind::kTransfer: return "transfer";
  }
  return "?";
}

/// One completed wait span on one PE's timeline. `phase` points at static
/// storage (an op name or a fixed literal) naming the compute phase the
/// PE was executing when it blocked.
struct WaitSpan {
  double t0_us = 0;
  double t1_us = 0;
  WaitKind kind = WaitKind::kBarrier;
  const char* phase = "run";
};

/// Per-PE wait accumulator; cacheline-padded so PEs never share a line.
/// Spans are capped — a pathological run degrades to totals-only (the
/// `truncated` flag survives into the report) instead of unbounded memory.
struct alignas(64) WaitTrack {
  static constexpr std::size_t kMaxSpans = 1u << 20;

  std::array<double, kNumWaitKinds> seconds{};
  std::array<std::uint64_t, kNumWaitKinds> count{};
  double t0_us = 0; // PE busy window (bound .. unbound)
  double t1_us = 0;
  bool collect_spans = true;
  bool truncated = false;
  std::vector<WaitSpan> spans;

  void record(WaitKind k, double t0, double t1, const char* phase) {
    const auto i = static_cast<std::size_t>(k);
    seconds[i] += (t1 - t0) * 1e-6;
    ++count[i];
    if (collect_spans) {
      if (spans.size() < kMaxSpans) {
        spans.push_back(WaitSpan{t0, t1, k, phase});
      } else {
        truncated = true;
      }
    }
  }
};

/// Thread-local binding state: which WaitTrack (if any) the current
/// thread records into, the current compute-phase label, and the scope
/// nesting depth (for suppressing inner scopes).
class WaitTracker {
public:
  static WaitTrack*& current() {
    thread_local WaitTrack* t = nullptr;
    return t;
  }
  static const char*& phase() {
    thread_local const char* p = "run";
    return p;
  }
  static int& depth() {
    thread_local int d = 0;
    return d;
  }

  /// Label the compute phase subsequent waits are attributed to. `name`
  /// must be static storage (op names qualify). A single store — cheap
  /// enough for the per-gate loop even when nothing is bound.
  static void set_phase(const char* name) { phase() = name; }
};

/// RAII wait span. Active when the thread is bound to a WaitTrack (full
/// wait-state attribution) and/or a live ProgressSlot (the /progress
/// per-PE wait column), and not already inside another scope — a
/// reduction that internally barriers records one kReduction span and
/// the inner barrier scopes no-op, so wait seconds never double count.
class WaitScope {
public:
  explicit WaitScope(WaitKind kind) : kind_(kind) {
    WaitTrack* t = WaitTracker::current();
    const bool live = bound_progress_slot() != nullptr;
    if ((t == nullptr && !live) || WaitTracker::depth() != 0) return;
    track_ = t;
    timing_ = true;
    ++WaitTracker::depth();
    t0_us_ = wait_now_us();
  }
  ~WaitScope() {
    if (!timing_) return;
    --WaitTracker::depth();
    const double t1_us = wait_now_us();
    progress_publish_wait_us(t1_us - t0_us_);
    if (track_ != nullptr) {
      track_->record(kind_, t0_us_, t1_us, WaitTracker::phase());
    }
  }
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

private:
  WaitKind kind_;
  WaitTrack* track_ = nullptr;
  bool timing_ = false;
  double t0_us_ = 0;
};

/// Owns the per-PE WaitTracks of one run. Created by a backend's
/// execute() when wait statistics are on; each PE thread binds itself for
/// the duration of its SPMD body via WaitBind.
class WaitRecorder {
public:
  explicit WaitRecorder(int n_workers)
      : tracks_(static_cast<std::size_t>(n_workers)) {}

  int n_workers() const { return static_cast<int>(tracks_.size()); }
  WaitTrack& track(int w) { return tracks_[static_cast<std::size_t>(w)]; }
  const WaitTrack& track(int w) const {
    return tracks_[static_cast<std::size_t>(w)];
  }

private:
  std::vector<WaitTrack> tracks_;
};

/// RAII thread→track binding for one PE body. Also stamps the PE's busy
/// window (t0 at bind, t1 at unbind), which is the per-PE wall time the
/// breakdown sums to. Null recorder = fully inert.
class WaitBind {
public:
  WaitBind(WaitRecorder* rec, int worker) {
    if (rec == nullptr) return;
    track_ = &rec->track(worker);
    track_->t0_us = wait_now_us();
    WaitTracker::current() = track_;
    WaitTracker::phase() = "run";
  }
  ~WaitBind() {
    if (track_ == nullptr) return;
    track_->t1_us = wait_now_us();
    WaitTracker::current() = nullptr;
    WaitTracker::phase() = "run";
  }
  WaitBind(const WaitBind&) = delete;
  WaitBind& operator=(const WaitBind&) = delete;

private:
  WaitTrack* track_ = nullptr;
};

/// SVSIM_WAITSTATS: -1 unset, 0 force-off, 1 force-on. Read once.
inline int env_waitstats() {
  static const int v = [] {
    const char* e = std::getenv("SVSIM_WAITSTATS");
    if (e == nullptr || *e == '\0') return -1;
    return std::atoi(e) != 0 ? 1 : 0;
  }();
  return v;
}

} // namespace svsim::obs
