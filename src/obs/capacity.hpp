// obs::capacity — analytic pre-run footprint estimation and admission
// control ("will this job fit?").
//
// The estimate is closed-form from the run's shape: 2^n amplitudes × 16
// bytes (split re/im double planes) × the backend's multiplier — the
// batched engine's B lockstep lanes, the shmem runtime's per-PE
// symmetric-heap arenas (which mirror ShmemSim's default sizing), the
// coarse baseline's in-flight message payloads, the oracle's dense
// reference state. test_memtrack pins the estimate within 10% of the
// MemRegistry-measured peak for the single/peer/shmem/batched backends.
//
// Admission control: `qasm_runner --estimate` prints the component table
// and exits 4 when the job would not fit; SVSIM_MEM_LIMIT (bytes, a
// "16G"-style suffixed size, or `auto` = MemAvailable at startup) makes
// every backend constructor fail fast with a clear message instead of
// OOM-killing mid-circuit — the one-line call ROADMAP item 1's
// multi-tenant admission needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace svsim::obs {

/// Shape of a prospective run, enough to price its resident footprint.
struct FootprintQuery {
  std::string backend = "single"; // name() string; "batched" for B lanes
  IdxType n_qubits = 0;
  int workers = 1;
  IdxType batch = 1;
  std::uint64_t gates = 0;          // sizes the batched coefficient slab
  std::uint64_t shmem_heap_bytes = 0; // per-PE override; 0 = default sizing
};

/// The priced footprint plus the fit verdict against the resolved limit.
struct FootprintEstimate {
  struct Component {
    std::string name;
    std::uint64_t bytes = 0;
  };
  std::vector<Component> components;
  std::uint64_t total_bytes = 0;
  std::uint64_t avail_bytes = 0; // MemAvailable at estimate time (0 unknown)
  std::uint64_t limit_bytes = 0; // resolved limit (0 = none configured)
  std::string limit_source;      // "config" | "env" | "" (none)
  bool fits = true; // vs the limit when set, else vs MemAvailable

  /// Human component table + fit verdict for `qasm_runner --estimate`.
  std::string table() const;
};

/// Price `q`'s resident footprint and render the fit verdict against
/// `config_limit` (SimConfig::mem_limit; 0 falls back to SVSIM_MEM_LIMIT,
/// then to the host's MemAvailable for the verdict only).
FootprintEstimate estimate_footprint(const FootprintQuery& q,
                                     std::uint64_t config_limit = 0);

/// MemAvailable from /proc/meminfo, 0 where unreadable.
std::uint64_t mem_available_bytes();

/// Parse a byte size: plain digits, a K/M/G/T-suffixed size ("16G"), or
/// "auto" (MemAvailable). False on garbage.
bool parse_mem_limit(const std::string& text, std::uint64_t* out);

/// SVSIM_MEM_LIMIT resolved to bytes (0 = unset/garbage). Read once.
std::uint64_t env_mem_limit();

/// Fail-fast admission check every backend constructor runs before its
/// first allocation: throws svsim::Error when a limit is configured
/// (SimConfig::mem_limit or SVSIM_MEM_LIMIT) and `q` would exceed it.
/// Also captures the pre-allocation RSS baseline for the memory report.
void enforce_mem_limit(const FootprintQuery& q, std::uint64_t config_limit);

/// enforce_mem_limit() packaged for a constructor init list: runs the
/// admission check for (backend, n, W, B) and returns 2^n, so the check
/// is sequenced before the state allocation it gates.
IdxType admit_dim(const char* backend, IdxType n_qubits, int workers,
                  IdxType batch, std::uint64_t config_limit);

} // namespace svsim::obs
