// MemRegistry implementation: tag accounting, the /proc sampler, the
// NUMA page-placement walk, and the report/HTTP exports.
//
// Locking: `mu_` guards the records and every aggregate; `thread_mu_`
// serializes sampler start/stop and is never taken while holding `mu_`
// (the sampler thread takes `mu_` per tick, so the reverse order would
// deadlock a stop against a tick).
#include "obs/memtrack.hpp"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "obs/capacity.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace svsim::obs {

namespace {

// Numbers the NUMA syscalls speak, local so no <numaif.h> (libnuma
// headers) is required: move_pages/get_mempolicy are raw syscalls here.
constexpr int kMpolFNode = 1;
constexpr int kMpolFAddr = 2;

/// Parse "<key>:   <n> kB" out of a /proc status-style text blob.
/// Returns false when the key is absent.
bool parse_kb(const std::string& text, const char* key, std::uint64_t* out) {
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) return false;
  const char* p = text.c_str() + pos + std::strlen(key);
  char* end = nullptr;
  const unsigned long long kb = std::strtoull(p, &end, 10);
  if (end == p) return false;
  *out = static_cast<std::uint64_t>(kb) * 1024;
  return true;
}

bool slurp_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return !out->empty();
}

} // namespace

const char* mem_tag_name(MemTag tag) {
  switch (tag) {
    case MemTag::kState: return "state";
    case MemTag::kBatch: return "batch";
    case MemTag::kShmemHeap: return "shmem_heap";
    case MemTag::kMailbox: return "mailbox";
    case MemTag::kPhaseTable: return "phase_table";
    case MemTag::kCoef: return "coef";
    case MemTag::kOracle: return "oracle";
    case MemTag::kOther: return "other";
  }
  return "other";
}

int env_memtrack() {
  static const int v = [] {
    const char* e = std::getenv("SVSIM_MEMTRACK");
    if (e == nullptr || *e == '\0') return 1;
    return std::atoi(e) != 0 ? 1 : 0;
  }();
  return v;
}

MemRegistry& MemRegistry::global() {
  // Deliberately not leaked (unlike Httpd/Trace): the destructor joins
  // the sampler thread, so TSan sees every thread accounted for at exit.
  static MemRegistry reg;
  return reg;
}

MemRegistry::MemRegistry() : enabled_(env_memtrack() != 0) {
  if (const char* e = std::getenv("SVSIM_MEMTRACK_MS")) {
    const int ms = std::atoi(e);
    if (ms > 0) interval_ms_ = ms;
  }
}

void MemRegistry::apply_delta_locked(MemTag tag, std::int64_t delta, int pe) {
  const auto apply = [delta](std::uint64_t* cur) {
    if (delta >= 0) {
      *cur += static_cast<std::uint64_t>(delta);
    } else {
      const std::uint64_t dec = static_cast<std::uint64_t>(-delta);
      *cur = *cur > dec ? *cur - dec : 0; // clamp: enable/disable races
    }
  };
  apply(&current_);
  if (current_ > peak_) {
    peak_ = current_;
    peak_ts_us_ = trace_now_us();
  }
  MemorySnapshot::TagStat& t = by_tag_[static_cast<int>(tag)];
  apply(&t.current);
  if (t.current > t.peak) t.peak = t.current;
  if (pe >= 0) {
    PeCount& p = per_pe_[pe];
    apply(&p.current);
    if (p.current > p.peak) p.peak = p.current;
  }
  Registry::global().gauge("mem.tracked_bytes").set(
      static_cast<double>(current_));
  Registry::global().gauge("mem.tracked_peak_bytes").set(
      static_cast<double>(peak_));
}

std::uint64_t MemRegistry::track(MemTag tag, const void* ptr,
                                 std::size_t bytes, int pe) {
  if (!enabled() || bytes == 0) return 0;
  ensure_baseline();
  bool want_sampler = false;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    live_[id] = Record{tag, ptr, bytes, pe, -1};
    apply_delta_locked(tag, static_cast<std::int64_t>(bytes), pe);
    want_sampler = !thread_run_.load(std::memory_order_relaxed);
  }
  if (want_sampler) {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_run_.load(std::memory_order_relaxed)) {
      if (thread_.joinable()) thread_.join(); // reap a self-stopped run
      thread_exited_.store(false, std::memory_order_relaxed);
      thread_run_.store(true, std::memory_order_relaxed);
      thread_ = std::thread([this] { sampler_loop(); });
    }
  }
  return id;
}

void MemRegistry::untrack(std::uint64_t id) {
  if (id == 0) return;
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(id);
    if (it == live_.end()) return;
    apply_delta_locked(it->second.tag,
                       -static_cast<std::int64_t>(it->second.bytes),
                       it->second.pe);
    live_.erase(it);
    idle = live_.empty() && current_ == 0;
  }
  // With nothing left to watch the sampler winds itself down; the next
  // track() (or the destructor) joins the exited thread.
  if (idle) thread_run_.store(false, std::memory_order_relaxed);
}

void MemRegistry::adjust(MemTag tag, std::int64_t delta, int pe) {
  if (!enabled() || delta == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  apply_delta_locked(tag, delta, pe);
}

void MemRegistry::ensure_baseline() {
  std::lock_guard<std::mutex> lock(mu_);
  if (baseline_done_) return;
  baseline_done_ = true;
  std::string text;
  if (slurp_file(proc_root_ + "/status", &text)) {
    parse_kb(text, "VmRSS:", &baseline_rss_);
  }
}

void MemRegistry::sample_proc_locked(bool deep) {
  std::string text;
  if (!slurp_file(proc_root_ + "/status", &text)) {
    sampled_ok_ = false;
    sample_error_ = "cannot read " + proc_root_ + "/status";
    return;
  }
  std::uint64_t rss = 0;
  std::uint64_t hwm = 0;
  if (!parse_kb(text, "VmRSS:", &rss)) {
    sampled_ok_ = false;
    sample_error_ = "no VmRSS in " + proc_root_ + "/status";
    return;
  }
  parse_kb(text, "VmHWM:", &hwm);
  rss_bytes_ = rss;
  if (hwm > hwm_bytes_) hwm_bytes_ = hwm;
  // smaps_rollup walks every VMA under mmap_lock and costs ~10x a status
  // read, so only deep ticks pay for it (THP coverage moves slowly).
  // Its absence on older kernels is not an error.
  if (deep) {
    std::string rollup;
    if (slurp_file(proc_root_ + "/smaps_rollup", &rollup)) {
      parse_kb(rollup, "AnonHugePages:", &thp_bytes_);
    }
  }
  sampled_ok_ = true;
  sample_error_.clear();
  ++samples_;
  Registry::global().gauge("mem.rss_bytes").set(static_cast<double>(rss));
  Registry::global().gauge("mem.hwm_bytes").set(
      static_cast<double>(hwm_bytes_));
  if (thp_bytes_ != 0) {
    Registry::global().gauge("mem.thp_bytes").set(
        static_cast<double>(thp_bytes_));
  }
}

void MemRegistry::sample_numa_locked() {
  if (numa_forced_off_.load(std::memory_order_relaxed)) {
    numa_ok_ = false;
    numa_error_ = "forced unavailable (test)";
    return;
  }
#if !defined(__linux__)
  numa_ok_ = false;
  numa_error_ = "NUMA page queries need Linux";
#else
  if (live_.empty()) return;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return;
  std::vector<std::uint64_t> node_bytes;
  bool any = false;
  for (auto& [id, rec] : live_) {
    (void)id;
    if (rec.ptr == nullptr || rec.bytes < static_cast<std::uint64_t>(page)) {
      continue;
    }
    // Sample up to 16 evenly spaced pages of the buffer; the placement
    // estimate weights the buffer's bytes by the sampled distribution.
    constexpr int kMaxPages = 16;
    const std::uint64_t n_pages = rec.bytes / static_cast<std::uint64_t>(page);
    const int n = n_pages < kMaxPages ? static_cast<int>(n_pages) : kMaxPages;
    void* pages[kMaxPages];
    int status[kMaxPages];
    const char* base = static_cast<const char*>(rec.ptr);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t pidx =
          n_pages * static_cast<std::uint64_t>(i) / static_cast<std::uint64_t>(n);
      pages[i] = const_cast<char*>(base) +
                 pidx * static_cast<std::uint64_t>(page);
    }
    long rc = -1;
#if defined(SYS_move_pages)
    rc = syscall(SYS_move_pages, 0, static_cast<unsigned long>(n), pages,
                 nullptr, status, 0);
#else
    errno = ENOSYS;
#endif
    if (rc != 0) {
      // Containers commonly deny move_pages; one get_mempolicy probe of
      // the first page is the cheaper fallback.
      int node = -1;
      long rc2 = -1;
#if defined(SYS_get_mempolicy)
      rc2 = syscall(SYS_get_mempolicy, &node, nullptr, 0, pages[0],
                    kMpolFNode | kMpolFAddr);
#endif
      if (rc2 != 0) {
        numa_ok_ = false;
        numa_error_ = std::string("move_pages/get_mempolicy unavailable: ") +
                      std::strerror(errno);
        return;
      }
      for (int i = 0; i < n; ++i) status[i] = node;
    }
    int counts[kMaxPages] = {}; // per-distinct-node page tallies
    int best_node = -1;
    int best_count = 0;
    int max_node = -1;
    for (int i = 0; i < n; ++i) {
      if (status[i] < 0) continue; // unmapped page (never touched)
      if (status[i] > max_node) max_node = status[i];
    }
    if (max_node >= 0) {
      if (static_cast<std::size_t>(max_node) + 1 > node_bytes.size()) {
        node_bytes.resize(static_cast<std::size_t>(max_node) + 1, 0);
      }
      int mapped = 0;
      for (int i = 0; i < n; ++i) {
        if (status[i] < 0) continue;
        ++mapped;
        const int slot = status[i] % kMaxPages;
        if (++counts[slot] > best_count) {
          best_count = counts[slot];
          best_node = status[i];
        }
      }
      for (int i = 0; i < n; ++i) {
        if (status[i] < 0) continue;
        node_bytes[static_cast<std::size_t>(status[i])] +=
            rec.bytes / static_cast<std::uint64_t>(mapped);
      }
      rec.node = best_node;
      any = true;
    }
  }
  if (any) {
    numa_ok_ = true;
    numa_error_.clear();
    node_bytes_ = std::move(node_bytes);
    for (auto& [pe, cnt] : per_pe_) {
      // Dominant node of the PE's largest live buffer wins.
      std::uint64_t best = 0;
      for (const auto& [id, rec] : live_) {
        (void)id;
        if (rec.pe == pe && rec.node >= 0 && rec.bytes > best) {
          best = rec.bytes;
          cnt.node = rec.node;
        }
      }
    }
  }
#endif
}

void MemRegistry::sample_now() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  sample_proc_locked(true);
  sample_numa_locked();
}

void MemRegistry::sampler_loop() {
  int tick = 0;
  while (thread_run_.load(std::memory_order_relaxed)) {
    // On a core-saturated host every microsecond this thread burns comes
    // straight off a worker PE's wall clock, so the steady-state tick is
    // just the VmRSS/VmHWM read; the expensive parts — smaps_rollup and
    // the move_pages NUMA walk — run on every 8th tick (200 ms at the
    // default cadence), which is plenty for placement that only changes
    // at allocation time.
    const bool deep = tick % 8 == 0;
    if (enabled()) {
      std::lock_guard<std::mutex> lock(mu_);
      sample_proc_locked(deep);
      if (deep) sample_numa_locked();
    }
    // The RSS counter track rewrites the trace file per sample; emit at
    // a quarter of the sampler cadence to keep that cheap.
    if (tick % 4 == 0 && Trace::global().enabled()) {
      std::uint64_t rss = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        rss = rss_bytes_;
      }
      if (rss != 0) {
        Trace::global().flush_counter("mem", "rss_mb", trace_now_us(),
                                      static_cast<double>(rss) / 1e6);
      }
    }
    ++tick;
    // Sleep in small slices so stop() latency stays low.
    int left = interval_ms_;
    while (left > 0 && thread_run_.load(std::memory_order_relaxed)) {
      const int slice = left < 5 ? left : 5;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      left -= slice;
    }
  }
  thread_exited_.store(true, std::memory_order_relaxed);
}

void MemRegistry::stop_sampler() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  thread_run_.store(false, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

MemorySnapshot MemRegistry::snapshot() const {
  MemorySnapshot snap;
  snap.enabled = enabled();
  std::lock_guard<std::mutex> lock(mu_);
  snap.current = current_;
  snap.peak = peak_;
  snap.peak_ts_us = peak_ts_us_;
  for (int i = 0; i < kNumMemTags; ++i) snap.by_tag[i] = by_tag_[i];
  for (const auto& [pe, cnt] : per_pe_) {
    MemorySnapshot::PeStat p;
    p.pe = pe;
    p.current = cnt.current;
    p.peak = cnt.peak;
    p.node = cnt.node;
    snap.per_pe.push_back(p);
  }
  snap.sampled = sampled_ok_;
  snap.sample_error = sample_error_;
  snap.rss_bytes = rss_bytes_;
  snap.hwm_bytes = hwm_bytes_;
  snap.baseline_rss = baseline_rss_;
  snap.thp_bytes = thp_bytes_;
  snap.samples = samples_;
  snap.numa = numa_ok_;
  snap.numa_error = numa_error_;
  snap.node_bytes = node_bytes_;
  return snap;
}

void MemRegistry::reset_peaks_for_testing() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_ = current_;
  peak_ts_us_ = trace_now_us();
  for (auto& t : by_tag_) t.peak = t.current;
  for (auto& [pe, cnt] : per_pe_) {
    (void)pe;
    cnt.peak = cnt.current;
  }
}

void MemRegistry::set_proc_root_for_testing(const std::string& root) {
  std::lock_guard<std::mutex> lock(mu_);
  proc_root_ = root;
  sampled_ok_ = false;
  sample_error_.clear();
  samples_ = 0;
}

void MemRegistry::force_numa_unavailable_for_testing(bool on) {
  numa_forced_off_.store(on, std::memory_order_relaxed);
}

namespace {

void append_u64(std::ostringstream& os, std::uint64_t v) {
  os << static_cast<unsigned long long>(v);
}

void append_quoted(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) >= 0x20) os << c;
  }
  os << '"';
}

} // namespace

std::string memory_json(const MemorySnapshot& snap) {
  std::ostringstream os;
  os << "{\"schema\":\"svsim-memory-v1\",\"enabled\":"
     << (snap.enabled ? "true" : "false");
  os << ",\"tracked_bytes\":";
  append_u64(os, snap.current);
  os << ",\"tracked_peak\":";
  append_u64(os, snap.peak);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", snap.peak_ts_us);
  os << ",\"peak_ts_us\":" << buf;
  os << ",\"tags\":[";
  bool first = true;
  for (int i = 0; i < kNumMemTags; ++i) {
    const MemorySnapshot::TagStat& t = snap.by_tag[i];
    if (t.current == 0 && t.peak == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"tag\":\"" << mem_tag_name(static_cast<MemTag>(i))
       << "\",\"current\":";
    append_u64(os, t.current);
    os << ",\"peak\":";
    append_u64(os, t.peak);
    os << '}';
  }
  os << "],\"per_pe\":[";
  for (std::size_t i = 0; i < snap.per_pe.size(); ++i) {
    const MemorySnapshot::PeStat& p = snap.per_pe[i];
    if (i != 0) os << ',';
    os << "{\"pe\":" << p.pe << ",\"current\":";
    append_u64(os, p.current);
    os << ",\"peak\":";
    append_u64(os, p.peak);
    os << ",\"node\":" << p.node << '}';
  }
  os << "],\"sampled\":" << (snap.sampled ? "true" : "false")
     << ",\"sample_error\":";
  append_quoted(os, snap.sample_error);
  os << ",\"rss_bytes\":";
  append_u64(os, snap.rss_bytes);
  os << ",\"hwm_bytes\":";
  append_u64(os, snap.hwm_bytes);
  os << ",\"baseline_rss\":";
  append_u64(os, snap.baseline_rss);
  os << ",\"thp_bytes\":";
  append_u64(os, snap.thp_bytes);
  os << ",\"samples\":";
  append_u64(os, snap.samples);
  os << ",\"numa\":" << (snap.numa ? "true" : "false") << ",\"numa_error\":";
  append_quoted(os, snap.numa_error);
  os << ",\"node_bytes\":[";
  for (std::size_t i = 0; i < snap.node_bytes.size(); ++i) {
    if (i != 0) os << ',';
    append_u64(os, snap.node_bytes[i]);
  }
  os << "]}";
  return os.str();
}

void fold_memory(RunReport& report) {
  report.memory = MemoryStats{};
  MemRegistry& reg = MemRegistry::global();
  if (!reg.enabled()) return;
  reg.sample_now();
  const MemorySnapshot snap = reg.snapshot();
  MemoryStats& m = report.memory;
  m.enabled = true;
  m.tracked_bytes = snap.current;
  m.tracked_peak = snap.peak;
  m.peak_ts_us = snap.peak_ts_us;
  for (int i = 0; i < kNumMemTags; ++i) {
    const MemorySnapshot::TagStat& t = snap.by_tag[i];
    if (t.current == 0 && t.peak == 0) continue;
    m.tags.push_back({mem_tag_name(static_cast<MemTag>(i)), t.current,
                      t.peak});
  }
  for (const MemorySnapshot::PeStat& p : snap.per_pe) {
    m.per_pe.push_back({p.pe, p.current, p.peak, p.node});
  }
  m.sampled = snap.sampled;
  m.sample_error = snap.sample_error;
  m.rss_bytes = snap.rss_bytes;
  m.peak_rss = snap.hwm_bytes > snap.rss_bytes ? snap.hwm_bytes
                                               : snap.rss_bytes;
  m.baseline_rss = snap.baseline_rss;
  m.thp_bytes = snap.thp_bytes;
  m.samples = snap.samples;
  m.numa = snap.numa;
  m.numa_error = snap.numa_error;
  m.node_bytes = snap.node_bytes;

  FootprintQuery q;
  q.backend = report.backend;
  q.n_qubits = report.n_qubits;
  q.workers = report.n_workers;
  q.batch = report.batch;
  q.gates = report.total_gates;
  m.estimated_bytes =
      static_cast<double>(estimate_footprint(q).total_bytes);
}

} // namespace svsim::obs
