#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "ir/circuit.hpp"

namespace svsim::obs {

void CommStats::add_shmem(const shmem::TrafficStats& t) {
  local_ops += t.local_gets + t.local_puts;
  remote_ops += t.remote_gets + t.remote_puts;
  bytes += t.bytes_got + t.bytes_put;
  barriers += t.barriers;
}

void CommStats::add_peer(std::uint64_t local_access,
                         std::uint64_t remote_access) {
  local_ops += local_access;
  remote_ops += remote_access;
  bytes += (local_access + remote_access) * sizeof(ValType);
}

void CommStats::add_messages(std::uint64_t messages_, std::uint64_t bytes_) {
  messages += messages_;
  remote_ops += messages_;
  bytes += bytes_;
}

void tally_gates(RunReport& report, const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    ++report.by_op[static_cast<std::size_t>(g.op)].count;
    ++report.total_gates;
  }
}

std::string RunReport::summary() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "run report: backend=%s qubits=%lld workers=%d gates=%llu "
                "wall=%.3f ms%s\n",
                backend.c_str(), static_cast<long long>(n_qubits), n_workers,
                static_cast<unsigned long long>(total_gates),
                wall_seconds * 1e3, profiled ? "" : " (profiling off)");
  os << buf;

  // Gate kinds, most expensive (or most frequent) first.
  std::vector<int> ops;
  for (int i = 0; i < kNumOps; ++i) {
    if (by_op[static_cast<std::size_t>(i)].count != 0) ops.push_back(i);
  }
  std::sort(ops.begin(), ops.end(), [&](int a, int b) {
    const auto& sa = by_op[static_cast<std::size_t>(a)];
    const auto& sb = by_op[static_cast<std::size_t>(b)];
    if (sa.seconds != sb.seconds) return sa.seconds > sb.seconds;
    return sa.count > sb.count;
  });
  if (!ops.empty()) {
    std::snprintf(buf, sizeof(buf), "  %-8s %10s %12s %12s\n", "gate",
                  "count", "total ms", "us/gate");
    os << buf;
    for (const int i : ops) {
      const auto& s = by_op[static_cast<std::size_t>(i)];
      std::snprintf(buf, sizeof(buf), "  %-8s %10llu %12.3f %12.3f\n",
                    op_name(static_cast<OP>(i)),
                    static_cast<unsigned long long>(s.count), s.seconds * 1e3,
                    s.count != 0 ? s.seconds * 1e6 / static_cast<double>(s.count)
                                 : 0.0);
      os << buf;
    }
  }

  if (fusion.gates_before != 0) {
    std::snprintf(buf, sizeof(buf),
                  "  fusion: %lld -> %lld gates (1q fused %lld, 2q cancelled "
                  "%lld, identities dropped %lld)\n",
                  static_cast<long long>(fusion.gates_before),
                  static_cast<long long>(fusion.gates_after),
                  static_cast<long long>(fusion.fused_1q),
                  static_cast<long long>(fusion.cancelled_2q),
                  static_cast<long long>(fusion.dropped_identity));
    os << buf;
  }

  if (comm.local_ops + comm.remote_ops + comm.messages != 0) {
    std::snprintf(buf, sizeof(buf),
                  "  comm: local ops %llu, remote ops %llu, bytes %llu, "
                  "messages %llu, barriers %llu\n",
                  static_cast<unsigned long long>(comm.local_ops),
                  static_cast<unsigned long long>(comm.remote_ops),
                  static_cast<unsigned long long>(comm.bytes),
                  static_cast<unsigned long long>(comm.messages),
                  static_cast<unsigned long long>(comm.barriers));
    os << buf;
  }
  return os.str();
}

} // namespace svsim::obs
