#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "ir/circuit.hpp"

namespace svsim::obs {

void CommStats::add_shmem(const shmem::TrafficStats& t) {
  local_ops += t.local_gets + t.local_puts;
  remote_ops += t.remote_gets + t.remote_puts;
  bytes += t.bytes_got + t.bytes_put;
  barriers += t.barriers;
}

void CommStats::add_peer(std::uint64_t local_access,
                         std::uint64_t remote_access) {
  local_ops += local_access;
  remote_ops += remote_access;
  bytes += (local_access + remote_access) * sizeof(ValType);
}

void CommStats::add_messages(std::uint64_t messages_, std::uint64_t bytes_) {
  messages += messages_;
  remote_ops += messages_;
  bytes += bytes_;
}

std::uint64_t TrafficMatrix::total() const {
  std::uint64_t t = 0;
  for (const std::uint64_t b : bytes) t += b;
  return t;
}

std::uint64_t TrafficMatrix::row_sum(int src) const {
  std::uint64_t t = 0;
  for (int d = 0; d < n; ++d) t += at(src, d);
  return t;
}

std::uint64_t TrafficMatrix::col_sum(int dst) const {
  std::uint64_t t = 0;
  for (int s = 0; s < n; ++s) t += at(s, dst);
  return t;
}

std::uint64_t TrafficMatrix::remote_total() const {
  std::uint64_t t = 0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) t += at(s, d);
    }
  }
  return t;
}

TrafficMatrix::Imbalance TrafficMatrix::imbalance() const {
  Imbalance im;
  if (n < 2) return im;
  std::uint64_t sum = 0;
  std::uint64_t links = 0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::uint64_t b = at(s, d);
      sum += b;
      if (b != 0) ++links;
      if (b > im.busiest_bytes) {
        im.busiest_bytes = b;
        im.busiest_src = s;
        im.busiest_dst = d;
      }
    }
  }
  if (links != 0 && sum != 0) {
    const double mean = static_cast<double>(sum) / static_cast<double>(links);
    im.max_mean_ratio = static_cast<double>(im.busiest_bytes) / mean;
  }
  return im;
}

namespace {

/// "1.2K" / "34M" style fixed-width byte quantity for matrix cells.
void human_bytes(char* buf, std::size_t len, std::uint64_t b) {
  if (b >= 10ull << 30) {
    std::snprintf(buf, len, "%lluG", static_cast<unsigned long long>(b >> 30));
  } else if (b >= 10ull << 20) {
    std::snprintf(buf, len, "%lluM", static_cast<unsigned long long>(b >> 20));
  } else if (b >= 10ull << 10) {
    std::snprintf(buf, len, "%lluK", static_cast<unsigned long long>(b >> 10));
  } else {
    std::snprintf(buf, len, "%llu", static_cast<unsigned long long>(b));
  }
}

} // namespace

std::string TrafficMatrix::table() const {
  std::ostringstream os;
  if (empty()) return "  traffic matrix: (not recorded)\n";
  const Imbalance im = imbalance();
  // Shade each cell relative to the busiest off-diagonal link so hotspots
  // read at a glance; the diagonal (local traffic) is marked '·'.
  static const char kShade[] = {' ', '.', ':', '+', '#'};
  os << "  traffic matrix (bytes issued src -> dst; shade # = busiest "
        "link, diagonal = local):\n";
  char buf[32];
  os << "            ";
  for (int d = 0; d < n; ++d) {
    std::snprintf(buf, sizeof(buf), "%9s%-2d", "dst", d);
    os << buf;
  }
  os << "        total\n";
  for (int s = 0; s < n; ++s) {
    std::snprintf(buf, sizeof(buf), "    src %-4d", s);
    os << buf;
    for (int d = 0; d < n; ++d) {
      const std::uint64_t b = at(s, d);
      char cell[16];
      human_bytes(cell, sizeof(cell), b);
      char shade = ' ';
      if (s == d) {
        shade = b != 0 ? '.' : ' ';
      } else if (im.busiest_bytes != 0 && b != 0) {
        const double rel =
            static_cast<double>(b) / static_cast<double>(im.busiest_bytes);
        shade = kShade[rel >= 0.999 ? 4 : rel >= 0.75 ? 3 : rel >= 0.5 ? 2
                       : rel >= 0.25 ? 1 : 0];
        if (shade == ' ') shade = '.';
      }
      std::snprintf(buf, sizeof(buf), "%9s %c", cell, shade);
      os << buf;
    }
    char rt[16];
    human_bytes(rt, sizeof(rt), row_sum(s));
    std::snprintf(buf, sizeof(buf), "%13s\n", rt);
    os << buf;
  }
  if (im.busiest_src >= 0) {
    char bb[16];
    human_bytes(bb, sizeof(bb), im.busiest_bytes);
    std::snprintf(buf, sizeof(buf), "%.2f", im.max_mean_ratio);
    os << "    busiest link " << im.busiest_src << " -> " << im.busiest_dst
       << " (" << bb << "), max/mean over links = " << buf << "\n";
  }
  return os.str();
}

void tally_gates(RunReport& report, const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    ++report.by_op[static_cast<std::size_t>(g.op)].count;
    ++report.total_gates;
  }
  report.circuit_hash = hash_circuit(circuit);
}

std::string RunReport::summary() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "run report: backend=%s qubits=%lld workers=%d gates=%llu "
                "wall=%.3f ms%s\n",
                backend.c_str(), static_cast<long long>(n_qubits), n_workers,
                static_cast<unsigned long long>(total_gates),
                wall_seconds * 1e3, profiled ? "" : " (profiling off)");
  os << buf;

  // Gate kinds, most expensive (or most frequent) first.
  std::vector<int> ops;
  for (int i = 0; i < kNumOps; ++i) {
    if (by_op[static_cast<std::size_t>(i)].count != 0) ops.push_back(i);
  }
  std::sort(ops.begin(), ops.end(), [&](int a, int b) {
    const auto& sa = by_op[static_cast<std::size_t>(a)];
    const auto& sb = by_op[static_cast<std::size_t>(b)];
    if (sa.seconds != sb.seconds) return sa.seconds > sb.seconds;
    return sa.count > sb.count;
  });
  if (!ops.empty()) {
    std::snprintf(buf, sizeof(buf), "  %-8s %10s %12s %12s\n", "gate",
                  "count", "total ms", "us/gate");
    os << buf;
    for (const int i : ops) {
      const auto& s = by_op[static_cast<std::size_t>(i)];
      std::snprintf(buf, sizeof(buf), "  %-8s %10llu %12.3f %12.3f\n",
                    op_name(static_cast<OP>(i)),
                    static_cast<unsigned long long>(s.count), s.seconds * 1e3,
                    s.count != 0 ? s.seconds * 1e6 / static_cast<double>(s.count)
                                 : 0.0);
      os << buf;
    }
  }

  if (fusion.gates_before != 0) {
    std::snprintf(buf, sizeof(buf),
                  "  fusion: %lld -> %lld gates (1q fused %lld, 2q cancelled "
                  "%lld, identities dropped %lld)\n",
                  static_cast<long long>(fusion.gates_before),
                  static_cast<long long>(fusion.gates_after),
                  static_cast<long long>(fusion.fused_1q),
                  static_cast<long long>(fusion.cancelled_2q),
                  static_cast<long long>(fusion.dropped_identity));
    os << buf;
  }

  if (comm.local_ops + comm.remote_ops + comm.messages != 0) {
    std::snprintf(buf, sizeof(buf),
                  "  comm: local ops %llu, remote ops %llu, bytes %llu, "
                  "messages %llu, barriers %llu\n",
                  static_cast<unsigned long long>(comm.local_ops),
                  static_cast<unsigned long long>(comm.remote_ops),
                  static_cast<unsigned long long>(comm.bytes),
                  static_cast<unsigned long long>(comm.messages),
                  static_cast<unsigned long long>(comm.barriers));
    os << buf;
  }

  if (health.enabled) {
    std::snprintf(buf, sizeof(buf),
                  "  health: %llu checks (every %d gates), max |norm2-1| = "
                  "%.3g (gates %llu..%llu), nan checks %llu, warns %llu%s\n",
                  static_cast<unsigned long long>(health.checks),
                  health.every_n, health.max_drift,
                  static_cast<unsigned long long>(health.drift_gate_lo),
                  static_cast<unsigned long long>(health.drift_gate_hi),
                  static_cast<unsigned long long>(health.nan_checks),
                  static_cast<unsigned long long>(health.warns),
                  health.aborted ? ", ABORTED" : "");
    os << buf;
  }

  if (sched.enabled) {
    std::snprintf(buf, sizeof(buf),
                  "  sched: b=%d, %llu windows covering %llu gates, "
                  "%llu passes saved (~%llu MB traffic avoided)%s\n",
                  sched.block_exp,
                  static_cast<unsigned long long>(sched.windows),
                  static_cast<unsigned long long>(sched.windowed_gates),
                  static_cast<unsigned long long>(sched.passes_saved),
                  static_cast<unsigned long long>(
                      sched.traffic_avoided_bytes >> 20),
                  sched.active ? "" : " (no blocked windows)");
    os << buf;
  }

  if (remap.enabled) {
    std::snprintf(buf, sizeof(buf),
                  "  remap: %llu swaps inserted (local bits %d), modeled "
                  "remote bytes %llu -> %llu%s\n",
                  static_cast<unsigned long long>(remap.swaps_inserted),
                  remap.local_bits,
                  static_cast<unsigned long long>(
                      remap.modeled_remote_bytes_before),
                  static_cast<unsigned long long>(
                      remap.modeled_remote_bytes_after),
                  remap.active ? "" : " (pass not applicable)");
    os << buf;
  }

  if (roofline.enabled) {
    const RooflineStats& r = roofline;
    std::snprintf(buf, sizeof(buf),
                  "  roofline: model %.2f MB moved (%.2f MB under schedule), "
                  "%.3f Mflop, AI %.4f flop/byte\n",
                  r.model_bytes / 1e6, r.model_bytes_sched / 1e6,
                  r.model_flops / 1e6, r.ai);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "    achieved %.2f GB/s (model bytes / wall) = %.1f%% of "
                  "%.1f GB/s machine peak\n",
                  r.model_gbps, r.attainment * 100.0, r.peak_gbps);
    os << buf;
    if (r.counters) {
      const double ipc =
          r.cycles != 0
              ? static_cast<double>(r.instructions) / static_cast<double>(r.cycles)
              : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "    counters: %.3fG cycles, %.3fG instr (IPC %.2f), LLC "
                    "%.2fM loads / %.2fM misses, mem %.2f GB/s\n",
                    static_cast<double>(r.cycles) / 1e9,
                    static_cast<double>(r.instructions) / 1e9, ipc,
                    static_cast<double>(r.llc_loads) / 1e6,
                    static_cast<double>(r.llc_misses) / 1e6, r.measured_gbps);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "    counters: unavailable (%s) — model-only roofline\n",
                    r.counters_error.c_str());
    }
    os << buf;
    if (!r.worst.empty()) {
      os << "    worst attainment (profiled):\n";
      for (const RooflineStats::OpAttainment& a : r.worst) {
        std::snprintf(buf, sizeof(buf),
                      "      %-8s %6.1f%% of peak (%.2f GB/s, %llu gates, "
                      "%.3f ms)\n",
                      op_name(a.op), a.attainment * 100.0, a.gbps,
                      static_cast<unsigned long long>(a.count),
                      a.seconds * 1e3);
        os << buf;
      }
    }
  }

  if (waitstate.enabled) {
    os << waitstate.table();
    std::snprintf(buf, sizeof(buf),
                  "    imbalance %.2f (max/avg compute), straggler PE %d, "
                  "wait fraction %.1f%%%s\n",
                  waitstate.imbalance, waitstate.straggler,
                  waitstate.wait_fraction * 100.0,
                  waitstate.truncated ? " (spans truncated)" : "");
    os << buf;
    if (waitstate.critical_pe >= 0) {
      double crit_ms = 0;
      for (const WaitProfile::Critical& c : waitstate.critical) {
        if (c.pe == waitstate.critical_pe &&
            c.phase == waitstate.critical_phase) {
          crit_ms = c.seconds * 1e3;
          break;
        }
      }
      std::snprintf(buf, sizeof(buf),
                    "    critical path: PE %d / %s bounds wall-clock "
                    "(%.3f ms of %.3f ms phase time)\n",
                    waitstate.critical_pe, waitstate.critical_phase.c_str(),
                    crit_ms, waitstate.critical_s * 1e3);
      os << buf;
    }
  }

  if (memory.enabled) {
    char peakb[16];
    char estb[16];
    human_bytes(peakb, sizeof(peakb), memory.tracked_peak);
    human_bytes(estb, sizeof(estb),
                static_cast<std::uint64_t>(memory.estimated_bytes));
    std::snprintf(buf, sizeof(buf),
                  "  memory: tracked peak %s (estimate %s, %+.1f%%)",
                  peakb, estb, memory.estimate_error() * 100.0);
    os << buf;
    if (memory.sampled) {
      char rssb[16];
      human_bytes(rssb, sizeof(rssb), memory.peak_rss);
      std::snprintf(buf, sizeof(buf), ", peak RSS %s (%llu samples)", rssb,
                    static_cast<unsigned long long>(memory.samples));
      os << buf;
    } else if (!memory.sample_error.empty()) {
      os << ", rss unsampled (" << memory.sample_error << ")";
    }
    os << '\n';
    for (const MemoryStats::Tag& t : memory.tags) {
      char curb[16];
      char tpb[16];
      human_bytes(curb, sizeof(curb), t.current);
      human_bytes(tpb, sizeof(tpb), t.peak);
      std::snprintf(buf, sizeof(buf), "    %-12s current %8s  peak %8s\n",
                    t.name.c_str(), curb, tpb);
      os << buf;
    }
    if (memory.numa && !memory.node_bytes.empty()) {
      os << "    numa placement:";
      for (std::size_t nd = 0; nd < memory.node_bytes.size(); ++nd) {
        char nb[16];
        human_bytes(nb, sizeof(nb), memory.node_bytes[nd]);
        std::snprintf(buf, sizeof(buf), " node%zu %s", nd, nb);
        os << buf;
      }
      os << '\n';
    } else if (!memory.numa_error.empty()) {
      os << "    numa: unavailable (" << memory.numa_error << ")\n";
    }
  }

  if (!matrix.empty()) {
    const TrafficMatrix::Imbalance im = matrix.imbalance();
    std::snprintf(buf, sizeof(buf),
                  "  traffic: %d PEs, %llu bytes (%llu remote), busiest link "
                  "%d -> %d, max/mean %.2f\n",
                  matrix.n, static_cast<unsigned long long>(matrix.total()),
                  static_cast<unsigned long long>(matrix.remote_total()),
                  im.busiest_src, im.busiest_dst, im.max_mean_ratio);
    os << buf;
  }
  return os.str();
}

} // namespace svsim::obs
