// obs::ProgressBoard — live, lock-free per-PE progress publishing with a
// model-calibrated ETA.
//
// Post-mortem observability (spans, health, roofline, wait-state) answers
// "what happened"; a multi-hour n>30 distributed run also needs "how far
// along is it" *while it runs*. State-vector simulation makes that signal
// unusually good: every gate's memory footprint is statically known
// (obs/perfmodel prices amps/bytes/flops per gate, and per window under
// the blocked scheduler), so progress can be measured in predicted bytes
// rather than raw gate counts — a QFT's cheap diagonal tail no longer
// makes the last 10% of gates look like 10% of the work. The ETA is then
// self-calibrating:
//
//   achieved B/s = predicted-bytes-done / elapsed
//   eta_s        = predicted-bytes-remaining / achieved B/s
//
// which stays accurate across machines, SIMD levels and sanitizer builds
// because the machine-dependent rate cancels out of the prediction.
//
// Concurrency contract (the part ThreadSanitizer pins in CI): each PE
// owns one cacheline-aligned ProgressSlot and publishes with relaxed
// atomic stores — one store plus one uncontended fetch_add per gate (or
// per blocked window), nothing shared between writers. Readers (the
// embedded httpd's accept thread, svsim_top via it, the signal handler)
// snapshot the slots with relaxed loads and never stall a worker. The
// cold run header (backend, totals, the per-gate predicted-bytes prefix)
// is guarded by a mutex taken only in begin_run/end_run/snapshot.
//
// The slot section of this header is intentionally include-light
// (atomics only): obs/waitstate.hpp pulls it in for the wait-time
// publishing hook, and waitstate is included by src/shmem which cannot
// link the obs library.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace svsim {
class Circuit;
struct Schedule;
} // namespace svsim

namespace svsim::obs {

/// One PE's live progress counters. Single writer (the owning worker
/// thread), any number of relaxed readers; cacheline-aligned so two PEs
/// never share a line.
struct alignas(64) ProgressSlot {
  std::atomic<std::uint64_t> gates_done{0}; // last retired 1-based gate id
  std::atomic<std::uint64_t> window{0};     // current schedule window index
  std::atomic<std::uint64_t> amps_done{0};  // amplitudes touched (approx)
  std::atomic<std::uint64_t> wait_us{0};    // published by WaitScope

  void reset() {
    gates_done.store(0, std::memory_order_relaxed);
    window.store(0, std::memory_order_relaxed);
    amps_done.store(0, std::memory_order_relaxed);
    wait_us.store(0, std::memory_order_relaxed);
  }
  void publish_gate(std::uint64_t gate_id, std::uint64_t amps) {
    gates_done.store(gate_id, std::memory_order_relaxed);
    amps_done.fetch_add(amps, std::memory_order_relaxed);
  }
  void publish_window(std::uint64_t w) {
    window.store(w, std::memory_order_relaxed);
  }
};

/// Thread-local slot binding for the wait-time hook: WaitScope (which
/// already wraps every blocking synchronization primitive) adds its span
/// length to the bound slot, so /progress and svsim_top can show a live
/// per-PE wait column without touching the non-atomic WaitTrack state.
inline ProgressSlot*& bound_progress_slot() {
  thread_local ProgressSlot* slot = nullptr;
  return slot;
}

/// Called from WaitScope's destructor (waitstate.hpp). One thread-local
/// load and a predictable branch when no slot is bound.
inline void progress_publish_wait_us(double us) {
  ProgressSlot* slot = bound_progress_slot();
  if (slot != nullptr && us > 0) {
    slot->wait_us.fetch_add(static_cast<std::uint64_t>(us),
                            std::memory_order_relaxed);
  }
}

/// RAII thread→slot binding for one worker's gate-loop body.
class ProgressScope {
public:
  explicit ProgressScope(ProgressSlot* slot) {
    if (slot != nullptr) {
      bound_progress_slot() = slot;
      bound_ = true;
    }
  }
  ~ProgressScope() {
    if (bound_) bound_progress_slot() = nullptr;
  }
  ProgressScope(const ProgressScope&) = delete;
  ProgressScope& operator=(const ProgressScope&) = delete;

private:
  bool bound_ = false;
};

/// A coherent read of the board, taken without stalling any worker.
struct ProgressSnapshot {
  bool valid = false;       // a run has been registered since startup
  bool active = false;      // gate loop in flight (not yet end_run)
  bool interrupted = false; // SIGINT/SIGTERM flush marked the run
  std::string backend;
  long long n_qubits = 0;
  int n_workers = 0;
  int batch = 1; // lockstep batch members (BatchedSim), 1 otherwise
  std::uint64_t total_gates = 0;
  std::uint64_t gates_done = 0; // min over PEs (the loops are lockstep)
  std::uint64_t window = 0;
  double amps_done = 0;      // summed over PEs
  double bytes_total = 0;    // perfmodel, schedule-aware
  double bytes_done = 0;     // prefix[gates_done]
  double fraction = 0;       // bytes_done / bytes_total
  double elapsed_s = 0;
  double gbps = 0;           // achieved, from bytes_done / elapsed
  bool eta_known = false;    // false until enough progress to calibrate
  double eta_s = 0;
  struct Pe {
    std::uint64_t gates_done = 0;
    std::uint64_t amps_done = 0;
    double wait_s = 0;
  };
  std::vector<Pe> pes;
};

/// Render a snapshot as the "svsim-progress-v1" JSON document served at
/// GET /progress.
std::string progress_to_json(const ProgressSnapshot& snap);

class ProgressBoard {
public:
  static constexpr int kMaxPes = 64; // matches FlightRecorder::kMaxWorkers

  static ProgressBoard& global();

  /// Publishing is opt-in: the embedded httpd enables the board when it
  /// starts, and SVSIM_PROGRESS=1 enables it without a server.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Register a run: stamp the header, reset the slots, and price the
  /// circuit through obs/perfmodel into a per-gate cumulative
  /// predicted-bytes prefix (schedule-aware when `sched` is given — a
  /// blocked window's single sweep is spread evenly over its gates).
  /// `batch` > 1 (BatchedSim) scales the predicted bytes by the member
  /// count so fraction/ETA stay accurate for lockstep-batched runs.
  void begin_run(const char* backend, IdxType n_qubits, int n_workers,
                 const Circuit& circuit, const Schedule* sched,
                 IdxType batch = 1);

  /// Close the run: freeze the wall clock and keep `report_json` (the
  /// finished svsim-report-v1 document) for GET /report.
  void end_run(std::string report_json);

  /// Worker `w`'s slot, or nullptr when w is out of range.
  ProgressSlot* slot(int worker) {
    if (worker < 0 || worker >= kMaxPes) return nullptr;
    return &slots_[worker];
  }

  ProgressSnapshot snapshot() const;

  /// The last completed run's report JSON ("" while a run is in flight
  /// or before the first end_run).
  std::string last_report_json() const;

  /// Mark the current run interrupted (async-signal-safe: one store).
  void mark_interrupted() {
    interrupted_.store(true, std::memory_order_relaxed);
  }

  /// Async-signal-safe partial progress document for the SIGINT/SIGTERM
  /// flush: snprintf into `buf` only (no allocation, no locks; reads the
  /// atomic mirrors of the header). Returns the rendered length.
  int render_json_signal_safe(char* buf, std::size_t len) const;

private:
  ProgressBoard() = default;

  mutable std::mutex mu_; // guards the cold header below
  std::string backend_;
  long long n_qubits_ = 0;
  int n_workers_ = 0;
  int batch_ = 1;
  std::uint64_t total_gates_ = 0;
  double start_us_ = 0; // wait_now_us() at begin_run
  double end_us_ = 0;   // frozen at end_run
  std::shared_ptr<const std::vector<double>> bytes_prefix_;
  std::string report_json_;
  bool have_run_ = false;

  // Signal-safe mirrors (plain atomics; the handler cannot take mu_).
  std::atomic<bool> enabled_{false};
  std::atomic<bool> active_{false};
  std::atomic<bool> interrupted_{false};
  std::atomic<std::uint64_t> total_gates_mirror_{0};
  std::atomic<double> bytes_total_mirror_{0};
  std::atomic<int> workers_mirror_{0};
  char backend_mirror_[24] = {0};

  ProgressSlot slots_[kMaxPes];
};

/// SVSIM_HTTP from the environment: -1 unset, else a port (0 = ephemeral).
/// Read once.
int env_http_port();

/// SVSIM_PROGRESS=1 enables progress publishing without a server. Read
/// once.
bool env_progress();

} // namespace svsim::obs
