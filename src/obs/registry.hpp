// obs::Registry — process-global named counters and histogram timers.
//
// The observability core: backends, the SHMEM runtime, and user code
// register monotonic counters ("runs.shmem", "obs.trace_events") and
// log2-bucketed histogram timers ("run_ms.single") by name. Entries are
// created on first use and are never removed — the returned references
// stay valid for the life of the process, so hot paths look a counter up
// once (e.g. a function-local static) and afterwards pay exactly one
// relaxed atomic add. All mutation is lock-free; only name resolution
// takes the registry mutex. reset() zeroes values in place rather than
// erasing entries, preserving cached references.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace svsim::obs {

namespace detail {
/// fetch_add for doubles via CAS (std::atomic<double>::fetch_add is C++20
/// but not yet reliable across the toolchains this builds on).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
} // namespace detail

/// Monotonic counter. Thread/PE-safe; one relaxed atomic add per bump.
class Counter {
public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> v_{0};
};

/// Histogram timer: count/sum/min/max plus log2 buckets of microseconds
/// (bucket k holds samples in [2^k, 2^{k+1}) us; bucket 0 also holds
/// sub-microsecond samples). Thread/PE-safe.
class Histogram {
public:
  static constexpr int kBuckets = 32;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_us = 0;
    double min_us = 0;
    double max_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
    double mean_us() const { return count != 0 ? sum_us / static_cast<double>(count) : 0; }
  };

  void record_us(double us);
  void record_seconds(double s) { record_us(s * 1e6); }
  Snapshot snapshot() const;
  void reset();

private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_us_{0};
  // +/-inf sentinels so concurrent first samples need no special case;
  // snapshot() reports 0 while empty.
  std::atomic<double> min_us_{1e300};
  std::atomic<double> max_us_{-1e300};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Instantaneous level (bytes resident, queue depth): last-write-wins
/// set() plus CAS add(), one relaxed atomic each. Thread/PE-safe.
class Gauge {
public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) { detail::atomic_add(v_, d); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> v_{0};
};

class Registry {
public:
  /// The process-wide registry every subsystem shares.
  static Registry& global();

  /// Find-or-create. Returned references are valid forever.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Zero every entry in place (entries are kept; cached refs stay valid).
  void reset();

  /// Snapshot views for exporters/tests (sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histogram_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;

  /// Human-readable dump of all non-zero entries.
  std::string summary() const;

  /// Prometheus text exposition (version 0.0.4) of every entry: counters
  /// as `svsim_<name>_total`, gauges as plain `svsim_<name>`, histograms
  /// as `svsim_<name>_seconds` cumulative-bucket histograms (le
  /// boundaries are the log2-µs bucket upper edges, in seconds) —
  /// scrapeable without parsing JSON (`qasm_runner --metrics`). Names
  /// are sanitized to [a-zA-Z0-9_].
  std::string write_prom() const;

private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

} // namespace svsim::obs
