#include "obs/flight.hpp"

#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fcntl.h>
#include <unistd.h>

#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace svsim::obs {

const char* flight_kind_name(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::kGate: return "gate";
    case FlightEvent::kComm: return "comm";
    case FlightEvent::kCheckpoint: return "health";
    case FlightEvent::kRunBegin: return "run";
  }
  return "?";
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t h = head.load(std::memory_order_acquire);
  const std::uint64_t count = h < kCap ? h : kCap;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = h - count; i < h; ++i) {
    out.push_back(ev[i & (kCap - 1)]);
  }
  return out;
}

FlightRecorder::FlightRecorder() : enabled_(env_enabled()) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder fr;
  return fr;
}

bool FlightRecorder::env_enabled() {
  static const bool on = [] {
    const char* e = std::getenv("SVSIM_FLIGHT");
    return e == nullptr || std::strcmp(e, "0") != 0;
  }();
  return on;
}

void FlightRecorder::begin_run(const char* backend, IdxType n_qubits,
                               int n_workers) {
  if (!enabled()) return;
  install_crash_handlers();
  install_shutdown_handlers();
  std::snprintf(active_.backend, sizeof(active_.backend), "%s", backend);
  active_.n_qubits = static_cast<long long>(n_qubits);
  active_.n_workers = n_workers;
  FlightEvent e;
  e.ts_us = trace_now_us();
  e.kind = FlightEvent::kRunBegin;
  e.worker = 0;
  rings_[0].push(e);
}

std::vector<FlightEvent> FlightRecorder::drain(int n_workers) const {
  std::vector<FlightEvent> out;
  if (n_workers > kMaxWorkers) n_workers = kMaxWorkers;
  for (int w = 0; w < n_workers; ++w) {
    std::vector<FlightEvent> ring = rings_[w].snapshot();
    for (FlightEvent& e : ring) {
      e.worker = static_cast<std::int16_t>(w);
      out.push_back(e);
    }
  }
  return out;
}

namespace {

/// write(2) a formatted line; async-signal-safe in practice (snprintf over
/// POD values, no allocation, no locks).
void raw_print(int fd, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void raw_print(int fd, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int len = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (len > 0) {
    const auto n = static_cast<std::size_t>(len) < sizeof(buf)
                       ? static_cast<std::size_t>(len)
                       : sizeof(buf) - 1;
    const ssize_t ignored = ::write(fd, buf, n);
    (void)ignored;
  }
}

std::atomic<bool> g_dumped{false};
std::terminate_handler g_prev_terminate = nullptr;

void dump_once(int fd, const char* why) {
  // One dump per process: a SIGABRT raised by the terminate hook (or a
  // cascading fault inside the handler) must not dump twice.
  bool expected = false;
  if (!g_dumped.compare_exchange_strong(expected, true)) return;
  raw_print(fd, "[svsim] ==== flight recorder dump (%s) ====\n", why);
  FlightRecorder::global().dump(fd);
  raw_print(fd, "[svsim] ==== end flight recorder dump ====\n");
}

void crash_signal_handler(int sig) {
  dump_once(2, sig == SIGSEGV   ? "SIGSEGV"
               : sig == SIGFPE  ? "SIGFPE"
               : sig == SIGABRT ? "SIGABRT"
                                : "signal");
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process dies with the original signal status.
  ::raise(sig);
}

void terminate_hook() {
  dump_once(2, "std::terminate");
  std::fflush(nullptr); // don't lose buffered stdio on the way down
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

char g_interrupt_path[512] = {0};

/// Graceful Ctrl-C / kill: without this, the trace, report, and progress
/// state die with the process. Everything on the hot path is
/// async-signal-safe (atomic stores, snprintf into a stack buffer, raw
/// open/write); the trace rewrite is best-effort behind a try_lock.
void shutdown_signal_handler(int sig) {
  ProgressBoard& board = ProgressBoard::global();
  board.mark_interrupted();
  char buf[4096];
  const int len = board.render_json_signal_safe(buf, sizeof(buf));
  int fd = 2;
  bool opened = false;
  if (g_interrupt_path[0] != '\0') {
    const int pf = ::open(g_interrupt_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (pf >= 0) {
      fd = pf;
      opened = true;
    }
  }
  if (!opened) {
    raw_print(2, "[svsim] interrupted (%s); partial progress:\n",
              sig == SIGINT ? "SIGINT" : "SIGTERM");
  }
  if (len > 0) {
    const ssize_t ignored = ::write(fd, buf, static_cast<std::size_t>(len));
    (void)ignored;
  }
  if (opened) ::close(fd);
  Trace::global().try_write();
  ::_exit(sig == SIGINT ? 130 : 143);
}

} // namespace

void install_shutdown_handlers() {
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &shutdown_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND; // a second signal terminates immediately
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

void set_interrupt_report_path(const char* path) {
  std::snprintf(g_interrupt_path, sizeof(g_interrupt_path), "%s",
                path != nullptr ? path : "");
}

void FlightRecorder::dump(int fd) const {
  raw_print(fd, "[svsim] run: backend=%s qubits=%lld workers=%d\n",
            active_.backend[0] != '\0' ? active_.backend : "<none>",
            active_.n_qubits, active_.n_workers);
  for (int w = 0; w < kMaxWorkers; ++w) {
    const FlightRing& r = rings_[w];
    const std::uint64_t h = r.head.load(std::memory_order_acquire);
    if (h == 0) continue;
    const std::uint64_t count = h < FlightRing::kCap ? h : FlightRing::kCap;
    raw_print(fd, "[svsim] worker %d: %llu events recorded, last %llu:\n", w,
              static_cast<unsigned long long>(h),
              static_cast<unsigned long long>(count));
    for (std::uint64_t i = h - count; i < h; ++i) {
      const FlightEvent& e = r.ev[i & (FlightRing::kCap - 1)];
      raw_print(fd,
                "[svsim]   #%llu t=%.1fus %s gate=%llu op=%s qb=(%d,%d)\n",
                static_cast<unsigned long long>(e.seq), e.ts_us,
                flight_kind_name(static_cast<FlightEvent::Kind>(e.kind)),
                static_cast<unsigned long long>(e.gate_id),
                e.op < static_cast<std::uint16_t>(kNumOps)
                    ? op_name(static_cast<OP>(e.op))
                    : "?",
                e.qb0, e.qb1);
    }
  }
}

void FlightRecorder::install_crash_handlers() {
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    // SA_RESETHAND: the default action is restored before the handler
    // runs, so the re-raise in the handler terminates for real.
    sa.sa_flags = SA_RESETHAND;
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGFPE, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    g_prev_terminate = std::set_terminate(&terminate_hook);
    return true;
  }();
  (void)installed;
}

} // namespace svsim::obs
