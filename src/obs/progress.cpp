#include "obs/progress.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/bits.hpp"
#include "ir/circuit.hpp"
#include "ir/schedule.hpp"
#include "obs/perfmodel.hpp"
#include "obs/waitstate.hpp"

namespace svsim::obs {

namespace {

/// %.17g round-trips doubles; trim to a clean integer rendering when the
/// value is one (mirrors report_json's conventions).
void append_double(std::ostringstream& os, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  os << buf;
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Per-gate cumulative predicted bytes: prefix[k] = model bytes of gates
/// [0, k). Schedule-aware: a blocked window's member sweeps collapse into
/// at most one full-state pass (the perfmodel's pricing), spread evenly
/// over the window's gates so mid-window progress interpolates sanely.
std::vector<double> build_bytes_prefix(const Circuit& circuit,
                                       const Schedule* sched) {
  const IdxType n = circuit.n_qubits();
  const double sweep_bytes = 32.0 * static_cast<double>(pow2(n));
  const auto& gates = circuit.gates();
  std::vector<double> prefix(gates.size() + 1, 0.0);
  const auto gate_bytes = [&](std::size_t k) {
    return gate_cost(gates[k], n).bytes;
  };
  if (sched != nullptr && !sched->windows.empty()) {
    std::size_t k = 0;
    for (const Window& w : sched->windows) {
      const auto count = static_cast<std::size_t>(w.n_gates);
      if (!w.blocked) {
        for (std::size_t j = 0; j < count; ++j, ++k) {
          prefix[k + 1] = prefix[k] + gate_bytes(k);
        }
        continue;
      }
      double sum = 0;
      for (std::size_t j = 0; j < count; ++j) sum += gate_bytes(k + j);
      const double window_bytes = std::min(sum, sweep_bytes);
      const double per = count != 0 ? window_bytes / static_cast<double>(count) : 0;
      for (std::size_t j = 0; j < count; ++j, ++k) {
        prefix[k + 1] = prefix[k] + per;
      }
    }
    // A schedule covers every gate exactly once; fall through per-gate if
    // a malformed one left a tail unpriced.
    for (; k < gates.size(); ++k) prefix[k + 1] = prefix[k] + gate_bytes(k);
  } else {
    for (std::size_t k = 0; k < gates.size(); ++k) {
      prefix[k + 1] = prefix[k] + gate_bytes(k);
    }
  }
  return prefix;
}

} // namespace

ProgressBoard& ProgressBoard::global() {
  static ProgressBoard b;
  return b;
}

void ProgressBoard::begin_run(const char* backend, IdxType n_qubits,
                              int n_workers, const Circuit& circuit,
                              const Schedule* sched, IdxType batch) {
  std::vector<double> scaled = build_bytes_prefix(circuit, sched);
  if (batch > 1) {
    // Lockstep batch: every sweep touches B members' amplitudes, so the
    // predicted-bytes axis (and with it fraction/ETA/GB/s) scales by B.
    for (double& v : scaled) v *= static_cast<double>(batch);
  }
  auto prefix =
      std::make_shared<const std::vector<double>>(std::move(scaled));
  const double total_bytes = prefix->back();
  {
    std::lock_guard<std::mutex> lock(mu_);
    backend_ = backend;
    n_qubits_ = static_cast<long long>(n_qubits);
    n_workers_ = n_workers < kMaxPes ? n_workers : kMaxPes;
    batch_ = batch > 1 ? static_cast<int>(batch) : 1;
    total_gates_ = static_cast<std::uint64_t>(circuit.n_gates());
    start_us_ = wait_now_us();
    end_us_ = 0;
    bytes_prefix_ = std::move(prefix);
    report_json_.clear();
    have_run_ = true;
  }
  for (int w = 0; w < kMaxPes; ++w) slots_[w].reset();
  std::snprintf(backend_mirror_, sizeof(backend_mirror_), "%s", backend);
  total_gates_mirror_.store(static_cast<std::uint64_t>(circuit.n_gates()),
                            std::memory_order_relaxed);
  bytes_total_mirror_.store(total_bytes, std::memory_order_relaxed);
  workers_mirror_.store(n_workers, std::memory_order_relaxed);
  interrupted_.store(false, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void ProgressBoard::end_run(std::string report_json) {
  std::lock_guard<std::mutex> lock(mu_);
  end_us_ = wait_now_us();
  report_json_ = std::move(report_json);
  active_.store(false, std::memory_order_release);
}

ProgressSnapshot ProgressBoard::snapshot() const {
  ProgressSnapshot s;
  std::shared_ptr<const std::vector<double>> prefix;
  double start_us = 0;
  double end_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!have_run_) return s;
    s.valid = true;
    s.backend = backend_;
    s.n_qubits = n_qubits_;
    s.n_workers = n_workers_;
    s.batch = batch_;
    s.total_gates = total_gates_;
    prefix = bytes_prefix_;
    start_us = start_us_;
    end_us = end_us_;
  }
  s.active = active_.load(std::memory_order_acquire);
  s.interrupted = interrupted_.load(std::memory_order_relaxed);
  s.bytes_total = prefix != nullptr && !prefix->empty() ? prefix->back() : 0;

  std::uint64_t min_gates = s.total_gates;
  std::uint64_t win = 0;
  s.pes.resize(static_cast<std::size_t>(s.n_workers));
  for (int w = 0; w < s.n_workers; ++w) {
    const ProgressSlot& slot = slots_[w];
    ProgressSnapshot::Pe& pe = s.pes[static_cast<std::size_t>(w)];
    pe.gates_done = slot.gates_done.load(std::memory_order_relaxed);
    pe.amps_done = slot.amps_done.load(std::memory_order_relaxed);
    pe.wait_s =
        static_cast<double>(slot.wait_us.load(std::memory_order_relaxed)) *
        1e-6;
    s.amps_done += static_cast<double>(pe.amps_done);
    min_gates = std::min(min_gates, pe.gates_done);
    win = std::max(win, slot.window.load(std::memory_order_relaxed));
  }
  s.window = win;
  const double now_us = wait_now_us();
  s.elapsed_s = ((s.active || end_us <= start_us ? now_us : end_us) -
                 start_us) * 1e-6;
  if (s.elapsed_s < 0) s.elapsed_s = 0;

  if (!s.active) {
    // Finished (or never started a gate): the run retired everything.
    s.gates_done = s.total_gates;
    s.bytes_done = s.bytes_total;
    s.fraction = 1.0;
    s.eta_known = true;
    s.eta_s = 0;
    s.gbps = s.elapsed_s > 0 ? s.bytes_total / s.elapsed_s * 1e-9 : 0;
    return s;
  }

  s.gates_done = min_gates;
  if (prefix != nullptr && min_gates < prefix->size()) {
    s.bytes_done = (*prefix)[static_cast<std::size_t>(min_gates)];
  }
  s.fraction = s.bytes_total > 0 ? s.bytes_done / s.bytes_total
               : s.total_gates > 0
                   ? static_cast<double>(min_gates) /
                         static_cast<double>(s.total_gates)
                   : 0;
  if (s.bytes_done > 0 && s.elapsed_s > 0) {
    const double rate = s.bytes_done / s.elapsed_s; // achieved B/s
    s.gbps = rate * 1e-9;
    s.eta_s = (s.bytes_total - s.bytes_done) / rate;
    s.eta_known = true;
  }
  return s;
}

std::string ProgressBoard::last_report_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_json_;
}

std::string progress_to_json(const ProgressSnapshot& s) {
  std::ostringstream os;
  os << "{\"schema\":\"svsim-progress-v1\"";
  os << ",\"valid\":" << (s.valid ? "true" : "false");
  os << ",\"active\":" << (s.active ? "true" : "false");
  os << ",\"interrupted\":" << (s.interrupted ? "true" : "false");
  os << ",\"backend\":";
  append_escaped(os, s.backend);
  os << ",\"n_qubits\":" << s.n_qubits;
  os << ",\"n_workers\":" << s.n_workers;
  os << ",\"batch\":" << s.batch;
  os << ",\"total_gates\":" << s.total_gates;
  os << ",\"gates_done\":" << s.gates_done;
  os << ",\"window\":" << s.window;
  os << ",\"amps_done\":";
  append_double(os, s.amps_done);
  os << ",\"bytes_total\":";
  append_double(os, s.bytes_total);
  os << ",\"bytes_done\":";
  append_double(os, s.bytes_done);
  os << ",\"fraction\":";
  append_double(os, s.fraction);
  os << ",\"elapsed_s\":";
  append_double(os, s.elapsed_s);
  os << ",\"gbps\":";
  append_double(os, s.gbps);
  os << ",\"eta_s\":";
  if (s.eta_known) {
    append_double(os, s.eta_s);
  } else {
    os << "null";
  }
  os << ",\"per_pe\":[";
  for (std::size_t w = 0; w < s.pes.size(); ++w) {
    const ProgressSnapshot::Pe& pe = s.pes[w];
    if (w != 0) os << ',';
    os << "{\"pe\":" << w << ",\"gates_done\":" << pe.gates_done
       << ",\"amps_done\":" << pe.amps_done << ",\"wait_s\":";
    append_double(os, pe.wait_s);
    os << '}';
  }
  os << "]}";
  return os.str();
}

int ProgressBoard::render_json_signal_safe(char* buf, std::size_t len) const {
  // No locks, no allocation: read only the atomic mirrors and the slots.
  const std::uint64_t total =
      total_gates_mirror_.load(std::memory_order_relaxed);
  const double bytes_total = bytes_total_mirror_.load(std::memory_order_relaxed);
  const int workers = workers_mirror_.load(std::memory_order_relaxed);
  std::uint64_t min_gates = total;
  for (int w = 0; w < workers && w < kMaxPes; ++w) {
    const std::uint64_t g =
        slots_[w].gates_done.load(std::memory_order_relaxed);
    if (g < min_gates) min_gates = g;
  }
  const double frac =
      total != 0 ? static_cast<double>(min_gates) / static_cast<double>(total)
                 : 0.0;
  const int n = std::snprintf(
      buf, len,
      "{\"schema\":\"svsim-progress-v1\",\"interrupted\":%s,"
      "\"active\":%s,\"backend\":\"%s\",\"n_workers\":%d,"
      "\"total_gates\":%llu,\"gates_done\":%llu,"
      "\"bytes_total\":%.17g,\"bytes_done\":%.17g,\"fraction\":%.17g}\n",
      interrupted_.load(std::memory_order_relaxed) ? "true" : "false",
      active_.load(std::memory_order_relaxed) ? "true" : "false",
      backend_mirror_, workers, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(min_gates), bytes_total,
      bytes_total * frac, frac);
  if (n < 0) return 0;
  return n < static_cast<int>(len) ? n : static_cast<int>(len) - 1;
}

int env_http_port() {
  static const int port = [] {
    const char* e = std::getenv("SVSIM_HTTP");
    if (e == nullptr || *e == '\0') return -1;
    const int p = std::atoi(e);
    return p >= 0 && p <= 65535 ? p : -1;
  }();
  return port;
}

bool env_progress() {
  static const bool on = [] {
    const char* e = std::getenv("SVSIM_PROGRESS");
    return e != nullptr && std::atoi(e) != 0;
  }();
  return on;
}

} // namespace svsim::obs
