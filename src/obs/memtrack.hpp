// obs::memtrack — tagged allocation registry + RSS/NUMA sampling: the
// bytes-resident leg of the observability plane.
//
// The simulator's defining resource is memory: a 2^n state vector is 16
// bytes per amplitude before any backend multiplier, and per-node
// footprint is what gates weak scaling. This module makes bytes-resident
// a first-class observable:
//
//  * TrackedBuffer<T> wraps common/aligned.hpp's AlignedBuffer with a
//    component tag (state planes, batched lanes, shmem heap, mailboxes,
//    phase tables, oracle scratch) and an owning PE, registering every
//    large allocation with the process-global MemRegistry — current and
//    peak bytes per tag and per PE, plus the high-water timestamp on the
//    shared trace clock.
//  * MemRegistry also runs a low-rate background sampler reading
//    /proc/self/status (VmRSS/VmHWM), /proc/self/smaps_rollup (THP), and
//    querying page placement of tracked buffers via the move_pages(2) /
//    get_mempolicy(2) syscalls for per-NUMA-node attribution. Like the
//    perf-counter tier, everything degrades gracefully: on non-Linux or
//    locked-down containers the sample is marked unavailable with the
//    reason string, and the tag accounting — which needs no kernel help —
//    keeps working.
//  * fold_memory() joins the registry snapshot and the capacity
//    estimator (obs/capacity.hpp) into RunReport::memory, the additive
//    `memory` section of svsim-report-v1.
//
// Activation: on by default; SVSIM_MEMTRACK=0 disables the registry (and
// with it the sampler thread) for overhead-sensitive runs. The sampler
// only runs while tracked allocations are live, and its cadence is
// SVSIM_MEMTRACK_MS (default 25 ms).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/aligned.hpp"

namespace svsim::obs {

struct RunReport;

/// Component tags for tracked allocations. Keep mem_tag_name() in sync.
enum class MemTag : int {
  kState = 0,   // re/im amplitude planes (single/peer/coarse/generalized)
  kBatch,       // batch-innermost lanes (BatchedSim)
  kShmemHeap,   // symmetric-heap arenas (shmem runtime, one per PE)
  kMailbox,     // coarse baseline's in-flight message payloads
  kPhaseTable,  // blocked scheduler's per-window diagonal phase tables
  kCoef,        // batched engine's per-plan coefficient rows
  kOracle,      // dense-matrix oracle state (testing tier)
  kOther,
};
inline constexpr int kNumMemTags = 8;

/// Static display name ("state", "shmem_heap", ...).
const char* mem_tag_name(MemTag tag);

/// SVSIM_MEMTRACK from the environment: 0 disables the registry.
/// Read once per process; 1 (on) when unset.
int env_memtrack();

/// Point-in-time view of everything the registry knows. All byte counts
/// are the 64-byte-rounded sizes the allocator actually reserved.
struct MemorySnapshot {
  bool enabled = false;

  // Tag accounting (exact, kernel-independent).
  std::uint64_t current = 0;
  std::uint64_t peak = 0;
  double peak_ts_us = 0; // trace-clock time the peak was set
  struct TagStat {
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
  };
  TagStat by_tag[kNumMemTags] = {};
  struct PeStat {
    int pe = -1;
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
    int node = -1; // dominant NUMA node of this PE's pages (-1 unknown)
  };
  std::vector<PeStat> per_pe; // PEs seen, ascending; pe -1 rows omitted

  // Process sample (/proc). `sampled == false` + error is the graceful
  // degradation on hosts without a readable procfs.
  bool sampled = false;
  std::string sample_error;
  std::uint64_t rss_bytes = 0;      // VmRSS at the last sample
  std::uint64_t hwm_bytes = 0;      // VmHWM (kernel high-water, robust
                                    // against the sampler's low rate)
  std::uint64_t baseline_rss = 0;   // VmRSS before the first tracked alloc
  std::uint64_t thp_bytes = 0;      // AnonHugePages from smaps_rollup
  std::uint64_t samples = 0;        // samples taken so far

  // NUMA placement of tracked pages. `numa == false` + error on
  // single-node / containerized hosts where the syscalls are denied.
  bool numa = false;
  std::string numa_error;
  std::vector<std::uint64_t> node_bytes; // tracked bytes per NUMA node
};

/// Process-global registry of tracked allocations. All mutation takes a
/// mutex — registration happens per *allocation*, not per gate, so this
/// is nowhere near the hot path.
class MemRegistry {
public:
  static MemRegistry& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Environment variables are read once, so benches that want an
  /// off/on overhead pair within one process toggle this directly.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Register `bytes` of live memory at `ptr` under `tag`, owned by `pe`
  /// (-1 = unowned). Returns an id for untrack(), 0 when disabled.
  std::uint64_t track(MemTag tag, const void* ptr, std::size_t bytes, int pe);
  void untrack(std::uint64_t id);

  /// Account transient memory with no stable address (in-flight message
  /// payloads): signed delta against `tag`/`pe`. NUMA sampling skips it.
  void adjust(MemTag tag, std::int64_t delta, int pe = -1);

  /// Capture the pre-allocation VmRSS baseline. First call wins; every
  /// backend calls this (via enforce_mem_limit / TrackedBuffer) before
  /// its first big allocation touches pages.
  void ensure_baseline();

  /// Take one synchronous sample (status + smaps_rollup + NUMA walk) in
  /// the caller's thread — fold_memory() uses this so even runs shorter
  /// than the sampler cadence report a real RSS.
  void sample_now();

  MemorySnapshot snapshot() const;

  /// Stop the background sampler (joins the thread). Also registered
  /// via atexit so TSan sees every thread joined.
  void stop_sampler();

  /// Tests: collapse peaks to current values so accounting assertions
  /// are independent of what earlier tests allocated.
  void reset_peaks_for_testing();
  /// Tests: redirect procfs reads ("/proc/self" by default); a bogus
  /// root exercises the sampled==false degradation path.
  void set_proc_root_for_testing(const std::string& root);
  /// Tests: force the NUMA syscalls to report unavailable.
  void force_numa_unavailable_for_testing(bool on);

private:
  MemRegistry();
  ~MemRegistry() { stop_sampler(); }

  struct Record {
    MemTag tag = MemTag::kOther;
    const void* ptr = nullptr;
    std::uint64_t bytes = 0;
    int pe = -1;
    int node = -1; // dominant node from the last NUMA walk
  };
  struct PeCount {
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
    int node = -1;
  };

  void apply_delta_locked(MemTag tag, std::int64_t delta, int pe);
  void ensure_sampler_locked();
  void sample_proc_locked(bool deep);
  void sample_numa_locked();
  void sampler_loop();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_;
  std::map<std::uint64_t, Record> live_;
  std::uint64_t next_id_ = 1;

  std::uint64_t current_ = 0;
  std::uint64_t peak_ = 0;
  double peak_ts_us_ = 0;
  MemorySnapshot::TagStat by_tag_[kNumMemTags] = {};
  std::map<int, PeCount> per_pe_;

  // Sampler state (guarded by mu_ except the flags).
  std::string proc_root_ = "/proc/self";
  bool baseline_done_ = false;
  bool sampled_ok_ = false;
  std::string sample_error_;
  std::uint64_t rss_bytes_ = 0;
  std::uint64_t hwm_bytes_ = 0;
  std::uint64_t baseline_rss_ = 0;
  std::uint64_t thp_bytes_ = 0;
  std::uint64_t samples_ = 0;
  bool numa_ok_ = false;
  std::string numa_error_;
  std::vector<std::uint64_t> node_bytes_;
  std::atomic<bool> numa_forced_off_{false};

  std::mutex thread_mu_; // start/stop serialization (never under mu_)
  std::thread thread_;
  std::atomic<bool> thread_run_{false};
  std::atomic<bool> thread_exited_{false};
  int interval_ms_ = 25;
};

/// AlignedBuffer with registration: same surface (allocate / release /
/// zero / data / size), plus the component tag and owning PE. Byte
/// accounting matches the allocator exactly (sizes round up to the
/// 64-byte alignment quantum). Move-only, like the buffer it wraps.
template <typename T>
class TrackedBuffer {
public:
  TrackedBuffer() = default;
  explicit TrackedBuffer(std::size_t count, MemTag tag = MemTag::kOther,
                         int pe = -1) {
    allocate(count, tag, pe);
  }
  ~TrackedBuffer() { release(); }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;
  TrackedBuffer(TrackedBuffer&& other) noexcept
      : buf_(std::move(other.buf_)), id_(other.id_) {
    other.id_ = 0;
  }
  TrackedBuffer& operator=(TrackedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      buf_ = std::move(other.buf_);
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }

  void allocate(std::size_t count, MemTag tag = MemTag::kOther, int pe = -1) {
    release();
    // Baseline RSS must predate the zero-fill below first-touching the
    // pages, or rss-minus-baseline would hide the first allocation.
    MemRegistry::global().ensure_baseline();
    buf_.allocate(count);
    if (count != 0) {
      id_ = MemRegistry::global().track(tag, buf_.data(),
                                        tracked_bytes(count), pe);
    }
  }

  void release() {
    if (id_ != 0) {
      MemRegistry::global().untrack(id_);
      id_ = 0;
    }
    buf_.release();
  }

  void zero() { buf_.zero(); }
  T* data() { return buf_.data(); }
  const T* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  T& operator[](std::size_t i) { return buf_[i]; }
  const T& operator[](std::size_t i) const { return buf_[i]; }

  /// Bytes the allocator reserves for `count` elements (64-byte quantum).
  static std::size_t tracked_bytes(std::size_t count) {
    const std::size_t raw = count * sizeof(T);
    return (raw + 63) / 64 * 64;
  }

private:
  AlignedBuffer<T> buf_;
  std::uint64_t id_ = 0;
};

/// RAII aggregate for container-backed allocations that are awkward to
/// wrap individually (a window's phase tables, the oracle's state):
/// add() registers bytes as they appear; destruction returns them all.
class MemAdjust {
public:
  MemAdjust() = default;
  explicit MemAdjust(MemTag tag, int pe = -1) : tag_(tag), pe_(pe) {}
  ~MemAdjust() { reset(); }

  MemAdjust(const MemAdjust&) = delete;
  MemAdjust& operator=(const MemAdjust&) = delete;
  MemAdjust(MemAdjust&& other) noexcept
      : tag_(other.tag_), pe_(other.pe_), total_(other.total_) {
    other.total_ = 0;
  }
  MemAdjust& operator=(MemAdjust&& other) noexcept {
    if (this != &other) {
      reset();
      tag_ = other.tag_;
      pe_ = other.pe_;
      total_ = other.total_;
      other.total_ = 0;
    }
    return *this;
  }

  void add(std::int64_t bytes) {
    if (bytes == 0) return;
    total_ += bytes;
    MemRegistry::global().adjust(tag_, bytes, pe_);
  }
  void reset() {
    if (total_ != 0) {
      MemRegistry::global().adjust(tag_, -total_, pe_);
      total_ = 0;
    }
  }
  std::int64_t total() const { return total_; }

private:
  MemTag tag_ = MemTag::kOther;
  int pe_ = -1;
  std::int64_t total_ = 0;
};

/// The /memory HTTP endpoint's document (schema "svsim-memory-v1"):
/// the full snapshot as RFC 8259 JSON.
std::string memory_json(const MemorySnapshot& snap);

/// Snapshot the registry (taking one synchronous sample first) into
/// `report.memory`, and attach the analytic footprint estimate for the
/// report's backend/shape. No-op body (enabled=false) when tracking is
/// off. Called lazily from Simulator::last_report().
void fold_memory(RunReport& report);

} // namespace svsim::obs
