#include "obs/health.hpp"

#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstdlib>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "common/logging.hpp"

namespace svsim::obs {

namespace {

/// Scalar reference: Σv² plus a count of non-finite entries.
inline void scan_array_scalar(const ValType* v, IdxType count, double* sq,
                              std::uint64_t* bad) {
  double acc = 0;
  std::uint64_t nf = 0;
  for (IdxType i = 0; i < count; ++i) {
    const double x = v[i];
    acc += x * x;
    // !(|x| <= DBL_MAX) is true exactly for NaN (unordered) and ±Inf.
    if (!(std::fabs(x) <= DBL_MAX)) ++nf;
  }
  *sq += acc;
  *bad += nf;
}

#if defined(__AVX512F__)

inline void scan_array(const ValType* v, IdxType count, double* sq,
                       std::uint64_t* bad) {
  const __m512d abs_mask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7fffffffffffffffLL));
  const __m512d dbl_max = _mm512_set1_pd(DBL_MAX);
  __m512d acc = _mm512_setzero_pd();
  std::uint64_t nf = 0;
  IdxType i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512d x = _mm512_loadu_pd(v + i);
    acc = _mm512_fmadd_pd(x, x, acc);
    const __m512d ax = _mm512_and_pd(x, abs_mask);
    // NLE_UQ: |x| not-less-equal DBL_MAX, unordered (NaN) included.
    nf += static_cast<std::uint64_t>(__builtin_popcount(
        _mm512_cmp_pd_mask(ax, dbl_max, _CMP_NLE_UQ)));
  }
  *sq += _mm512_reduce_add_pd(acc);
  *bad += nf;
  if (i < count) scan_array_scalar(v + i, count - i, sq, bad);
}

#elif defined(__AVX2__)

inline void scan_array(const ValType* v, IdxType count, double* sq,
                       std::uint64_t* bad) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d dbl_max = _mm256_set1_pd(DBL_MAX);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t nf = 0;
  IdxType i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
    const __m256d ax = _mm256_and_pd(x, abs_mask);
    const __m256d m = _mm256_cmp_pd(ax, dbl_max, _CMP_NLE_UQ);
    nf += static_cast<std::uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(m))));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  *sq += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  *bad += nf;
  if (i < count) scan_array_scalar(v + i, count - i, sq, bad);
}

#else

inline void scan_array(const ValType* v, IdxType count, double* sq,
                       std::uint64_t* bad) {
  scan_array_scalar(v, count, sq, bad);
}

#endif

/// The /healthz mirror: one writer (worker 0 via observe), relaxed
/// readers off the worker threads. Plain atomics — the fields need not
/// be mutually consistent, only individually fresh.
struct HealthMirror {
  std::atomic<bool> monitored{false};
  std::atomic<std::uint64_t> checks{0};
  std::atomic<std::uint64_t> nan_checks{0};
  std::atomic<std::uint64_t> warns{0};
  std::atomic<std::uint64_t> non_finite{0};
  std::atomic<double> last_norm2{1.0};
  std::atomic<double> max_drift{0};
  std::atomic<bool> aborted{false};
};

HealthMirror& mirror() {
  static HealthMirror m;
  return m;
}

} // namespace

HealthSnapshot health_snapshot() {
  const HealthMirror& m = mirror();
  HealthSnapshot s;
  s.monitored = m.monitored.load(std::memory_order_relaxed);
  s.checks = m.checks.load(std::memory_order_relaxed);
  s.nan_checks = m.nan_checks.load(std::memory_order_relaxed);
  s.warns = m.warns.load(std::memory_order_relaxed);
  s.non_finite = m.non_finite.load(std::memory_order_relaxed);
  s.last_norm2 = m.last_norm2.load(std::memory_order_relaxed);
  s.max_drift = m.max_drift.load(std::memory_order_relaxed);
  s.aborted = m.aborted.load(std::memory_order_relaxed);
  return s;
}

void health_mirror_begin() {
  HealthMirror& m = mirror();
  m.checks.store(0, std::memory_order_relaxed);
  m.nan_checks.store(0, std::memory_order_relaxed);
  m.warns.store(0, std::memory_order_relaxed);
  m.non_finite.store(0, std::memory_order_relaxed);
  m.last_norm2.store(1.0, std::memory_order_relaxed);
  m.max_drift.store(0, std::memory_order_relaxed);
  m.aborted.store(false, std::memory_order_relaxed);
  m.monitored.store(true, std::memory_order_relaxed);
}

void health_mirror_publish(const HealthStats& stats) {
  HealthMirror& m = mirror();
  m.checks.store(stats.checks, std::memory_order_relaxed);
  m.nan_checks.store(stats.nan_checks, std::memory_order_relaxed);
  m.warns.store(stats.warns, std::memory_order_relaxed);
  m.non_finite.store(stats.non_finite, std::memory_order_relaxed);
  m.last_norm2.store(stats.last_norm2, std::memory_order_relaxed);
  m.max_drift.store(stats.max_drift, std::memory_order_relaxed);
  m.aborted.store(stats.aborted, std::memory_order_relaxed);
}

void scan_amplitudes(const ValType* re, const ValType* im, IdxType count,
                     double* norm2, std::uint64_t* non_finite) {
  double sq = 0;
  std::uint64_t bad = 0;
  scan_array(re, count, &sq, &bad);
  scan_array(im, count, &sq, &bad);
  *norm2 = sq;
  *non_finite = bad;
}

int env_health_every() {
  static const int every = [] {
    const char* e = std::getenv("SVSIM_HEALTH");
    if (e == nullptr || *e == '\0') return 0;
    const int n = std::atoi(e);
    return n > 0 ? n : 0;
  }();
  return every;
}

double env_health_abort() {
  static const double drift = [] {
    const char* e = std::getenv("SVSIM_HEALTH_ABORT");
    if (e == nullptr || *e == '\0') return 0.0;
    const double d = std::atof(e);
    return d > 0 ? d : 0.0;
  }();
  return drift;
}

HealthMonitor::Options HealthMonitor::options(const SimConfig& cfg) {
  Options o;
  o.every_n = cfg.health_every_n > 0 ? cfg.health_every_n : env_health_every();
  o.warn_drift = cfg.health_warn_drift;
  const double env_abort = env_health_abort();
  o.abort_drift = cfg.health_abort_drift > 0 ? cfg.health_abort_drift : env_abort;
  o.abort_on_nan = cfg.health_abort_on_nan || env_abort > 0;
  return o;
}

void HealthMonitor::observe(std::uint64_t gate_hi, double norm2,
                            std::uint64_t non_finite) {
  ++stats_.checks;
  stats_.last_norm2 = norm2;
  if (non_finite != 0) {
    ++stats_.nan_checks;
    if (non_finite > stats_.non_finite) stats_.non_finite = non_finite;
    if (stats_.nan_checks <= 5) { // rate-limit: the state rarely heals
      log_warn("health: ", non_finite, " non-finite amplitude value",
               non_finite == 1 ? "" : "s", " in gate range (", prev_gate_,
               ", ", gate_hi, "]");
    }
  } else if (std::isfinite(norm2)) {
    const double drift = std::fabs(norm2 - 1.0);
    if (drift > stats_.max_drift) {
      stats_.max_drift = drift;
      stats_.drift_gate_lo = prev_gate_;
      stats_.drift_gate_hi = gate_hi;
    }
    if (drift > opt_.warn_drift) {
      ++stats_.warns;
      if (stats_.warns <= 5) {
        log_warn("health: norm drift |‖ψ‖²-1| = ", drift,
                 " in gate range (", prev_gate_, ", ", gate_hi, "]");
      }
    }
  }
  if (should_abort(norm2, non_finite)) {
    stats_.aborted = true;
    log_error("health: abort threshold tripped after gate ", gate_hi,
              " (norm² = ", norm2, ", non-finite = ", non_finite,
              "); stopping the run");
  }
  prev_gate_ = gate_hi;
  health_mirror_publish(stats_);
}

bool HealthMonitor::should_abort(double norm2,
                                 std::uint64_t non_finite) const {
  if (opt_.abort_on_nan && non_finite != 0) return true;
  if (opt_.abort_drift > 0) {
    // A non-finite norm is "infinite drift": above any threshold.
    if (!std::isfinite(norm2)) return true;
    return std::fabs(norm2 - 1.0) > opt_.abort_drift;
  }
  return false;
}

} // namespace svsim::obs
