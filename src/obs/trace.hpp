// obs::Trace — process-global Chrome trace-event sink.
//
// Profiled runs append "complete" events (ph:"X") here; the sink rewrites
// the target file after every flush so a valid trace exists even if the
// process never exits cleanly. The file loads directly into
// chrome://tracing or https://ui.perfetto.dev.
//
// Track layout: one trace *process* per backend instance-name ("single",
// "shmem", ...) and one *thread* (track) per PE/worker within it, so a
// scale-out run shows per-PE gate timelines side by side — the per-gate /
// per-communication-phase attribution the paper's evaluation is built on.
//
// Activation: the output path comes from the SVSIM_PROFILE environment
// variable (read once at first use) or an explicit set_path() call.
// Timestamps are microseconds on a steady clock shared by every backend
// in the process, so successive run() calls lay out sequentially.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace svsim::obs {

/// One completed span, timestamps in microseconds since the trace epoch.
/// `name`/`cat` must point at static storage (op names qualify).
/// `args`, when non-empty, is the *body* of the event's "args" object —
/// pre-rendered JSON members like `"window":3,"gates":17` (no braces).
struct TraceEvent {
  const char* name = "";
  const char* cat = "gate";
  double ts_us = 0;
  double dur_us = 0;
  std::string args;
};

/// Path from $SVSIM_PROFILE, or "" if unset. Read once per process.
const std::string& env_profile_path();

/// Microseconds since the process trace epoch (steady clock).
double trace_now_us();

class Trace {
public:
  static Trace& global();

  /// Tracing is "on" whenever a path is configured; GateRecorders then
  /// collect events and flush them here at the end of each run().
  bool enabled() const;
  void set_path(const std::string& path);
  std::string path() const;

  /// Append one run's events — per_worker[w] are worker w's spans — under
  /// the process-track named `process`, then rewrite the file. A repeated
  /// `process` name reuses its track, so successive runs of one simulator
  /// extend the same timeline.
  void flush_run(const std::string& process,
                 std::vector<std::vector<TraceEvent>>&& per_worker);

  /// Append one run's events to an auxiliary *named* track of `process`
  /// (e.g. the scheduler's "sched windows" track). Named tracks live on
  /// high tids so they sort below the per-PE gate timelines; a repeated
  /// (process, track) pair reuses its tid across runs.
  void flush_named_track(const std::string& process, const std::string& track,
                         std::vector<TraceEvent>&& events);

  /// Append one Chrome counter sample (ph:"C") named `name` at `ts_us`
  /// under the process-track `process`. Counter tracks render as a filled
  /// graph in the trace viewer — used for the roofline GB/s overlay.
  void flush_counter(const std::string& process, const char* name,
                     double ts_us, double value);

  /// Rewrite the file from the currently buffered events.
  void write();

  /// Best-effort write for the graceful-shutdown signal handler: try_lock
  /// instead of lock, so a handler firing mid-flush skips the rewrite
  /// (the sink already rewrote the file at the last flush) instead of
  /// deadlocking on the mutex its own thread may hold. Returns whether
  /// the rewrite happened.
  bool try_write();

  /// Drop all buffered events and track registrations (tests).
  void clear();

  std::size_t event_count() const;

private:
  struct Stored {
    TraceEvent e;
    int pid;
    int tid;
    char ph = 'X'; // 'X' complete span, 'C' counter sample
  };

  int pid_locked(const std::string& process);
  void write_locked();

  mutable std::mutex mu_;
  // Lazily seeded from $SVSIM_PROFILE on first path() query (const).
  mutable std::string path_;
  mutable bool path_init_ = false;
  std::map<std::string, int> pids_;
  std::set<std::pair<int, int>> threads_;
  // Auxiliary named tracks: (pid, track name) -> tid (>= kNamedTidBase).
  std::map<std::pair<int, std::string>, int> named_tracks_;
  std::vector<Stored> events_;
};

} // namespace svsim::obs
