// obs::Httpd — a dependency-free embedded HTTP/1.1 telemetry endpoint.
//
// The live-telemetry front door (DESIGN.md §9): a single accept thread on
// a loopback-bound POSIX socket serves tiny read-only GETs so external
// pollers (Prometheus, svsim_top, a CI smoke client) can interrogate a
// running simulation without any library dependency or worker stall:
//
//   GET /metrics   Registry::write_prom() (Prometheus text 0.0.4)
//   GET /healthz   HealthMonitor mirror; 200 ok / 503 when tripped
//   GET /progress  svsim-progress-v1 JSON (ProgressBoard snapshot)
//   GET /report    last finished run's svsim-report-v1, or a best-effort
//                  partial report while a run is in flight
//   GET /          plain-text index of the endpoints
//
// Connection policy: requests are handled sequentially on the accept
// thread (bounded by construction — one in flight, small listen backlog),
// with a receive timeout so a stalled client cannot wedge the endpoint.
// Responses are Connection: close. All handlers read lock-free snapshots
// or take only cold-path mutexes; the gate loops never block on a scrape.
//
// Activation: SVSIM_HTTP=<port> (0 = ephemeral) on any binary, the
// SimConfig::http_port field, or qasm_runner --serve. Starting the server
// also enables the ProgressBoard publishers.
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace svsim::obs {

class Httpd {
public:
  /// The process-wide server instance (at most one endpoint per process).
  static Httpd& global();

  ~Httpd();

  /// Bind 127.0.0.1:<port> (0 = kernel-assigned) and spawn the accept
  /// thread. Idempotent while running; returns false when the bind/listen
  /// fails. On success the ProgressBoard is enabled so gate loops publish.
  bool start(int port);

  /// Close the listener and join the accept thread. Safe to call twice.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolved after an ephemeral bind), or -1.
  int port() const { return port_.load(std::memory_order_acquire); }

private:
  Httpd() = default;
  void serve_loop();

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> port_{-1};
  int listen_fd_ = -1;
  std::thread thread_;
};

/// Resolve the effective telemetry port (SimConfig::http_port when >= 0,
/// else SVSIM_HTTP) and start the global server once. Also honors
/// SVSIM_PROGRESS=1 (publishers on, no server). Called per run by the
/// backends; cheap after the first call. Returns true when progress
/// publishing should be on.
bool maybe_start_httpd(int cfg_port);

/// Minimal blocking HTTP/1.1 GET for loopback polling (svsim_top, tests,
/// the bench idle poller). Returns false on connect/transport failure;
/// on success fills the numeric status and the response body.
bool http_get(const std::string& host, int port, const std::string& path,
              int* status, std::string* body);

} // namespace svsim::obs
