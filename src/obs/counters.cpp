#include "obs/counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace svsim::obs {

namespace {
std::atomic<bool> g_force_unavailable{false};

#if defined(__linux__)
const char* errno_name(int err) {
  switch (err) {
    case EPERM: return "EPERM";
    case EACCES: return "EACCES";
    case ENOENT: return "ENOENT";
    case ENOSYS: return "ENOSYS";
    case ENODEV: return "ENODEV";
    case EOPNOTSUPP: return "EOPNOTSUPP";
    case EINVAL: return "EINVAL";
    default: return "errno";
  }
}

long open_event(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Worker threads are spawned per run() *after* the sampler exists and
  // joined before it is read, so inherited child counts are complete.
  attr.inherit = 1;
  // The four events multiplex on most PMUs; these let sample() scale.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return syscall(SYS_perf_event_open, &attr, 0 /*this thread*/,
                 -1 /*any cpu*/, -1 /*no group: inherit forbids it*/, 0UL);
}

constexpr std::uint64_t llc_read(std::uint64_t result) {
  return PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (result << 16);
}
#endif
} // namespace

CounterSampler::CounterSampler(bool enable) {
  if (!enable) return;
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    error_ = "EPERM";
    return;
  }
#if defined(__linux__)
  struct Want {
    std::uint32_t type;
    std::uint64_t config;
    std::uint32_t alt_type;   // fallback event (0 = none)
    std::uint64_t alt_config; // e.g. LLC-loads -> cache-references
  };
  const Want want[kEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, 0, 0},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, 0, 0},
      {PERF_TYPE_HW_CACHE, llc_read(PERF_COUNT_HW_CACHE_RESULT_ACCESS),
       PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
      {PERF_TYPE_HW_CACHE, llc_read(PERF_COUNT_HW_CACHE_RESULT_MISS),
       PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
  };
  for (int i = 0; i < kEvents; ++i) {
    long fd = open_event(want[i].type, want[i].config);
    if (fd < 0 && want[i].alt_type != 0) {
      fd = open_event(want[i].alt_type, want[i].alt_config);
    }
    if (fd < 0) {
      error_ = errno_name(errno);
      for (int j = 0; j < i; ++j) {
        close(fds_[j]);
        fds_[j] = -1;
      }
      return;
    }
    fds_[i] = static_cast<int>(fd);
  }
  available_ = true;
#else
  error_ = "unsupported platform";
#endif
}

CounterSampler::~CounterSampler() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

void CounterSampler::start() {
#if defined(__linux__)
  if (!available_) return;
  for (int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
}

void CounterSampler::stop() {
#if defined(__linux__)
  if (!available_) return;
  for (int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
#endif
}

CounterSample CounterSampler::sample() const {
  CounterSample s;
  if (!available_) {
    s.error = error_.empty() ? "counters disabled" : error_;
    return s;
  }
#if defined(__linux__)
  std::uint64_t vals[kEvents] = {0, 0, 0, 0};
  for (int i = 0; i < kEvents; ++i) {
    // read_format: value, time_enabled, time_running.
    std::uint64_t buf[3] = {0, 0, 0};
    const ssize_t got = read(fds_[i], buf, sizeof buf);
    if (got != static_cast<ssize_t>(sizeof buf)) {
      s.error = "short read";
      return s;
    }
    double v = static_cast<double>(buf[0]);
    if (buf[2] != 0 && buf[2] < buf[1]) {
      v = v * static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
    }
    vals[i] = static_cast<std::uint64_t>(v);
  }
  s.available = true;
  s.cycles = vals[0];
  s.instructions = vals[1];
  s.llc_loads = vals[2];
  s.llc_misses = vals[3];
#endif
  return s;
}

void CounterSampler::force_unavailable_for_testing(bool on) {
  g_force_unavailable.store(on, std::memory_order_relaxed);
}

} // namespace svsim::obs
