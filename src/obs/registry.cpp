#include "obs/registry.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace svsim::obs {

void Histogram::record_us(double us) {
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_us_, us);
  detail::atomic_min(min_us_, us);
  detail::atomic_max(max_us_, us);

  int b = 0;
  if (us >= 1.0) {
    b = static_cast<int>(std::log2(us));
    if (b >= kBuckets) b = kBuckets - 1;
    if (b < 0) b = 0;
  }
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  s.min_us = s.count != 0 ? min_us_.load(std::memory_order_relaxed) : 0;
  s.max_us = s.count != 0 ? max_us_.load(std::memory_order_relaxed) : 0;
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  min_us_.store(1e300, std::memory_order_relaxed);
  max_us_.store(-1e300, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::histogram_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->snapshot());
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; map the registry's dotted
/// names ("run_ms.single") onto underscores.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double quote, and newline
/// must be escaped inside `label="..."`.
std::string prom_label_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

} // namespace

std::string Registry::write_prom() const {
  // Exposition-format conformance: `# HELP`/`# TYPE` exactly once per
  // metric family. Distinct registry names that sanitize to the same
  // family ("a.b" and "a_b") therefore share one header and carry a
  // `name="<original>"` label to keep their samples distinct; a family
  // with a single source keeps the plain unlabeled form.
  std::ostringstream os;
  std::map<std::string, std::vector<std::pair<std::string, std::uint64_t>>>
      counter_fams;
  for (const auto& [name, v] : counter_values()) {
    counter_fams["svsim_" + prom_name(name) + "_total"].emplace_back(name, v);
  }
  for (const auto& [m, members] : counter_fams) {
    os << "# HELP " << m << " svsim cumulative counter\n";
    os << "# TYPE " << m << " counter\n";
    for (const auto& [name, v] : members) {
      os << m;
      if (members.size() > 1) {
        os << "{name=\"" << prom_label_escape(name) << "\"}";
      }
      os << ' ' << v << '\n';
    }
  }
  char buf[64];
  std::map<std::string, std::vector<std::pair<std::string, double>>>
      gauge_fams;
  for (const auto& [name, v] : gauge_values()) {
    gauge_fams["svsim_" + prom_name(name)].emplace_back(name, v);
  }
  for (const auto& [m, members] : gauge_fams) {
    os << "# HELP " << m << " svsim instantaneous gauge\n";
    os << "# TYPE " << m << " gauge\n";
    for (const auto& [name, v] : members) {
      os << m;
      if (members.size() > 1) {
        os << "{name=\"" << prom_label_escape(name) << "\"}";
      }
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      os << ' ' << buf << '\n';
    }
  }
  std::map<std::string,
           std::vector<std::pair<std::string, Histogram::Snapshot>>>
      histo_fams;
  for (const auto& [name, s] : histogram_values()) {
    histo_fams["svsim_" + prom_name(name) + "_seconds"].emplace_back(name, s);
  }
  for (const auto& [m, members] : histo_fams) {
    os << "# HELP " << m << " svsim latency histogram (seconds)\n";
    os << "# TYPE " << m << " histogram\n";
    for (const auto& [name, s] : members) {
      const std::string tag =
          members.size() > 1 ? "name=\"" + prom_label_escape(name) + "\"," : "";
      // Buckets are cumulative with `le` in seconds: registry bucket k
      // holds samples in [2^k, 2^{k+1}) µs, so its upper edge is 2^{k+1}µs.
      std::uint64_t cum = 0;
      for (int k = 0; k < Histogram::kBuckets; ++k) {
        const std::uint64_t n = s.buckets[static_cast<std::size_t>(k)];
        cum += n;
        if (n == 0 && k != 0) continue; // sparse: only emit occupied edges
        std::snprintf(buf, sizeof(buf), "%.9g",
                      std::ldexp(1.0, k + 1) * 1e-6);
        os << m << "_bucket{" << tag << "le=\"" << buf << "\"} " << cum
           << '\n';
      }
      os << m << "_bucket{" << tag << "le=\"+Inf\"} " << s.count << '\n';
      std::snprintf(buf, sizeof(buf), "%.9g", s.sum_us * 1e-6);
      os << m << "_sum";
      if (!tag.empty()) {
        os << '{' << tag.substr(0, tag.size() - 1) << '}'; // drop comma
      }
      os << ' ' << buf << '\n';
      os << m << "_count";
      if (!tag.empty()) {
        os << '{' << tag.substr(0, tag.size() - 1) << '}';
      }
      os << ' ' << s.count << '\n';
    }
  }
  return os.str();
}

std::string Registry::summary() const {
  std::ostringstream os;
  for (const auto& [name, v] : counter_values()) {
    if (v != 0) os << "  counter " << name << " = " << v << "\n";
  }
  for (const auto& [name, v] : gauge_values()) {
    if (v != 0) os << "  gauge   " << name << " = " << v << "\n";
  }
  for (const auto& [name, s] : histogram_values()) {
    if (s.count == 0) continue;
    os << "  timer   " << name << ": n=" << s.count << " mean=" << s.mean_us()
       << "us min=" << s.min_us << "us max=" << s.max_us << "us\n";
  }
  return os.str();
}

} // namespace svsim::obs
