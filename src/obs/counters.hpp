// obs::CounterSampler — hardware performance counters around the gate loop.
//
// Wraps perf_event_open(2) on Linux: cycles, instructions, and last-level
// cache loads/misses, counted across the sampling thread *and every worker
// thread it spawns* (inherit=1 — valid here because all three wired
// backends create their worker teams after the sampler starts and join
// them before it is read). The four events share time on the PMU; counts
// are scaled by time_enabled/time_running, the standard multiplexing
// correction.
//
// The whole facility degrades gracefully: in containers and CI runners
// perf_event_open is typically denied (EPERM/EACCES under the default
// seccomp profile, or perf_event_paranoid), on non-Linux hosts the syscall
// does not exist. Either way sample() returns {available=false, error=...}
// and the roofline report falls back to model-only output — counters must
// never change a run's behavior or exit code.
#pragma once

#include <cstdint>
#include <string>

namespace svsim::obs {

/// One joined reading of the counter group. `available` is false when the
/// kernel refused the events (or the platform has none); the remaining
/// fields are then zero and `error` says why (e.g. "EPERM").
struct CounterSample {
  bool available = false;
  std::string error; // empty when available; errno name / reason otherwise
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_loads = 0;  // last-level cache read accesses
  std::uint64_t llc_misses = 0; // ... that missed to memory
};

class CounterSampler {
public:
  /// Opens the event group when `enable`; a disabled sampler is inert and
  /// free. Opening never throws — failure is recorded and reported via
  /// sample().
  explicit CounterSampler(bool enable);
  ~CounterSampler();

  CounterSampler(const CounterSampler&) = delete;
  CounterSampler& operator=(const CounterSampler&) = delete;

  /// Reset and start counting / stop counting. No-ops when unavailable.
  void start();
  void stop();

  /// Read the (stopped) counters, multiplex-scaled.
  CounterSample sample() const;

  /// Test hook: force every subsequent constructor down the
  /// counters-unavailable path, as if perf_event_open returned EPERM.
  static void force_unavailable_for_testing(bool on);

private:
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
  bool available_ = false;
  std::string error_;
};

} // namespace svsim::obs
