// Footprint pricing per backend + the SVSIM_MEM_LIMIT admission check.
#include "obs/capacity.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/memtrack.hpp"

namespace svsim::obs {

namespace {

/// 64-byte allocation quantum, matching AlignedBuffer / TrackedBuffer.
std::uint64_t round64(std::uint64_t bytes) {
  return (bytes + 63) / 64 * 64;
}

std::string human_bytes_local(std::uint64_t b) {
  char buf[32];
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(b) / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(b) / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(b));
  }
  return buf;
}

} // namespace

std::uint64_t mem_available_bytes() {
  std::ifstream in("/proc/meminfo");
  if (!in) return 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("MemAvailable:", 0) == 0) {
      const unsigned long long kb =
          std::strtoull(line.c_str() + std::strlen("MemAvailable:"), nullptr,
                        10);
      return static_cast<std::uint64_t>(kb) * 1024;
    }
  }
  return 0;
}

bool parse_mem_limit(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  if (text == "auto") {
    *out = mem_available_bytes();
    return *out != 0;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::uint64_t mult = 1;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': mult = 1ull << 10; break;
      case 'M': mult = 1ull << 20; break;
      case 'G': mult = 1ull << 30; break;
      case 'T': mult = 1ull << 40; break;
      default: return false;
    }
    // Allow a trailing B/iB ("16GiB"); anything else is garbage.
    const char* rest = end + 1;
    if (*rest != '\0' && std::strcmp(rest, "B") != 0 &&
        std::strcmp(rest, "iB") != 0) {
      return false;
    }
  }
  *out = static_cast<std::uint64_t>(v) * mult;
  return true;
}

std::uint64_t env_mem_limit() {
  static const std::uint64_t v = [] {
    const char* e = std::getenv("SVSIM_MEM_LIMIT");
    if (e == nullptr || *e == '\0') return std::uint64_t{0};
    std::uint64_t bytes = 0;
    if (!parse_mem_limit(e, &bytes)) {
      std::fprintf(stderr,
                   "svsim: ignoring unparseable SVSIM_MEM_LIMIT=\"%s\"\n", e);
      return std::uint64_t{0};
    }
    return bytes;
  }();
  return v;
}

FootprintEstimate estimate_footprint(const FootprintQuery& q,
                                     std::uint64_t config_limit) {
  FootprintEstimate est;
  const std::uint64_t dim = q.n_qubits > 0
                                ? static_cast<std::uint64_t>(pow2(q.n_qubits))
                                : 1;
  const std::uint64_t amp_bytes = 2 * sizeof(ValType); // split re/im
  const int workers = q.workers > 0 ? q.workers : 1;
  const std::uint64_t batch =
      q.batch > 1 ? static_cast<std::uint64_t>(q.batch) : 1;

  const bool batched = batch > 1 || q.backend.rfind("batched", 0) == 0;
  if (batched) {
    est.components.push_back(
        {"batched lanes (2^n x B amps, re+im)",
         round64(dim * batch * amp_bytes)});
    // One coefficient slab row per gate table entry, batch-wide; at most
    // 8 rows per gate in the upload format. Small next to the lanes, but
    // part of the tracked peak the estimate is validated against.
    est.components.push_back(
        {"coefficient slab", round64(q.gates * 8 * batch * sizeof(ValType))});
  } else if (q.backend.rfind("shmem", 0) == 0) {
    // Mirrors ShmemSim's default_heap_bytes: the state planes live
    // inside the per-PE symmetric-heap arenas.
    const std::uint64_t heap =
        q.shmem_heap_bytes != 0
            ? q.shmem_heap_bytes
            : (dim / static_cast<std::uint64_t>(workers)) * amp_bytes +
                  (1u << 16);
    est.components.push_back(
        {"symmetric heap (per-PE arena x W)",
         round64(heap) * static_cast<std::uint64_t>(workers)});
  } else if (q.backend.rfind("coarse", 0) == 0) {
    est.components.push_back(
        {"state planes (2^n amps, re+im)", round64(dim * amp_bytes)});
    // Worst-case in-flight exchange payloads: every rank's outgoing
    // partition copy plus the received copy, 2 x amp_bytes x 2^n total.
    est.components.push_back(
        {"mailbox payloads (transient)", 2 * dim * amp_bytes});
  } else if (q.backend.rfind("oracle", 0) == 0) {
    est.components.push_back(
        {"dense oracle state (2^n amps)", round64(dim * amp_bytes)});
  } else {
    // single / peer / generalized: one pair of re/im planes, split
    // across devices for peer but the same total.
    est.components.push_back(
        {"state planes (2^n amps, re+im)", round64(dim * amp_bytes)});
  }

  for (const FootprintEstimate::Component& c : est.components) {
    est.total_bytes += c.bytes;
  }
  est.avail_bytes = mem_available_bytes();
  if (config_limit != 0) {
    est.limit_bytes = config_limit;
    est.limit_source = "config";
  } else if (env_mem_limit() != 0) {
    est.limit_bytes = env_mem_limit();
    est.limit_source = "env";
  }
  if (est.limit_bytes != 0) {
    est.fits = est.total_bytes <= est.limit_bytes;
  } else if (est.avail_bytes != 0) {
    est.fits = est.total_bytes <= est.avail_bytes;
  }
  return est;
}

std::string FootprintEstimate::table() const {
  std::ostringstream os;
  os << "estimated resident footprint:\n";
  for (const Component& c : components) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-38s %14llu  (%s)\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.bytes),
                  human_bytes_local(c.bytes).c_str());
    os << line;
  }
  char line[160];
  std::snprintf(line, sizeof(line), "  %-38s %14llu  (%s)\n", "total",
                static_cast<unsigned long long>(total_bytes),
                human_bytes_local(total_bytes).c_str());
  os << line;
  if (limit_bytes != 0) {
    std::snprintf(line, sizeof(line), "  limit (%s): %s\n",
                  limit_source.c_str(),
                  human_bytes_local(limit_bytes).c_str());
    os << line;
  }
  if (avail_bytes != 0) {
    std::snprintf(line, sizeof(line), "  host MemAvailable: %s\n",
                  human_bytes_local(avail_bytes).c_str());
    os << line;
  }
  os << "  verdict: " << (fits ? "fits" : "would NOT fit") << '\n';
  return os.str();
}

void enforce_mem_limit(const FootprintQuery& q, std::uint64_t config_limit) {
  // The RSS baseline must predate the allocations this check gates.
  MemRegistry::global().ensure_baseline();
  const std::uint64_t limit =
      config_limit != 0 ? config_limit : env_mem_limit();
  if (limit == 0) return;
  const FootprintEstimate est = estimate_footprint(q, config_limit);
  if (est.total_bytes <= limit) return;
  char msg[256];
  std::snprintf(msg, sizeof(msg),
                "%s backend needs ~%s for n=%lld (W=%d, B=%lld), over the "
                "%s memory limit of %s — refusing to allocate "
                "(SVSIM_MEM_LIMIT / SimConfig::mem_limit)",
                q.backend.c_str(),
                human_bytes_local(est.total_bytes).c_str(),
                static_cast<long long>(q.n_qubits), q.workers,
                static_cast<long long>(q.batch),
                est.limit_source.c_str(),
                human_bytes_local(limit).c_str());
  throw Error(msg);
}

IdxType admit_dim(const char* backend, IdxType n_qubits, int workers,
                  IdxType batch, std::uint64_t config_limit) {
  FootprintQuery q;
  q.backend = backend;
  q.n_qubits = n_qubits;
  q.workers = workers;
  q.batch = batch;
  enforce_mem_limit(q, config_limit);
  return pow2(n_qubits);
}

} // namespace svsim::obs
