#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/registry.hpp"
#include "obs/waitstate.hpp"

namespace svsim::obs {

const std::string& env_profile_path() {
  static const std::string path = [] {
    const char* p = std::getenv("SVSIM_PROFILE");
    return std::string(p != nullptr ? p : "");
  }();
  return path;
}

double trace_now_us() {
  // Shares the wait-state epoch so gate spans and wait spans land on one
  // timeline (obs/waitstate.hpp owns the inline epoch; shmem cannot link
  // this library).
  return wait_now_us();
}

Trace& Trace::global() {
  static Trace t;
  return t;
}

bool Trace::enabled() const { return !path().empty(); }

void Trace::set_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  path_init_ = true;
}

std::string Trace::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!path_init_) {
    path_ = env_profile_path();
    path_init_ = true;
  }
  return path_;
}

namespace {
// Named tracks (scheduler windows, ...) live well above any plausible PE
// count so they sort after the per-PE gate timelines within a process.
constexpr int kNamedTidBase = 1000;
} // namespace

int Trace::pid_locked(const std::string& process) {
  auto [it, fresh] = pids_.emplace(process, static_cast<int>(pids_.size()));
  return it->second;
}

void Trace::flush_run(const std::string& process,
                      std::vector<std::vector<TraceEvent>>&& per_worker) {
  std::size_t added = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int pid = pid_locked(process);
    for (int tid = 0; tid < static_cast<int>(per_worker.size()); ++tid) {
      auto& evs = per_worker[static_cast<std::size_t>(tid)];
      if (evs.empty()) continue;
      threads_.insert({pid, tid});
      for (TraceEvent& e : evs) {
        events_.push_back(Stored{std::move(e), pid, tid, 'X'});
        ++added;
      }
    }
    write_locked();
  }
  Registry::global().counter("obs.trace_events").add(added);
}

void Trace::flush_named_track(const std::string& process,
                              const std::string& track,
                              std::vector<TraceEvent>&& events) {
  if (events.empty()) return;
  std::size_t added = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int pid = pid_locked(process);
    auto [it, fresh] = named_tracks_.emplace(
        std::make_pair(pid, track),
        kNamedTidBase + static_cast<int>(named_tracks_.size()));
    const int tid = it->second;
    for (TraceEvent& e : events) {
      events_.push_back(Stored{std::move(e), pid, tid, 'X'});
      ++added;
    }
    write_locked();
  }
  Registry::global().counter("obs.trace_events").add(added);
}

void Trace::flush_counter(const std::string& process, const char* name,
                          double ts_us, double value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int pid = pid_locked(process);
    TraceEvent e;
    e.name = name;
    e.cat = "counter";
    e.ts_us = ts_us;
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"value\":%.3f", value);
    e.args = buf;
    events_.push_back(Stored{std::move(e), pid, 0, 'C'});
    write_locked();
  }
  Registry::global().counter("obs.trace_events").add(1);
}

void Trace::write() {
  std::lock_guard<std::mutex> lock(mu_);
  write_locked();
}

bool Trace::try_write() {
  if (!mu_.try_lock()) return false;
  write_locked();
  mu_.unlock();
  return true;
}

void Trace::write_locked() {
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return; // profiling must never kill a run
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputc(',', f);
    first = false;
    std::fputc('\n', f);
  };
  for (const auto& [name, pid] : pids_) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 pid, name.c_str());
  }
  for (const auto& [pid, tid] : threads_) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"name\":\"PE %d\"}}",
                 pid, tid, tid);
  }
  for (const auto& [key, tid] : named_tracks_) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                 key.first, tid, key.second.c_str());
  }
  for (const Stored& s : events_) {
    sep();
    if (s.ph == 'C') {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,"
                   "\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
                   s.e.name, s.e.cat, s.e.ts_us, s.pid, s.tid,
                   s.e.args.c_str());
      continue;
    }
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                 "\"dur\":%.3f,\"pid\":%d,\"tid\":%d",
                 s.e.name, s.e.cat, s.e.ts_us, s.e.dur_us, s.pid, s.tid);
    if (!s.e.args.empty()) {
      std::fprintf(f, ",\"args\":{%s}", s.e.args.c_str());
    }
    std::fputc('}', f);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pids_.clear();
  threads_.clear();
  named_tracks_.clear();
  events_.clear();
}

std::size_t Trace::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

} // namespace svsim::obs
