// obs::Span / obs::GateRecorder — the per-gate profiling hot path.
//
// A GateRecorder is created per run() when profiling is on and handed to
// the backend's gate loop; each worker/PE writes into its own
// cacheline-padded track (no atomics, no sharing on the hot path). A Span
// is the RAII hook dropped around one gate application: with a null
// recorder it compiles down to two predictable branches, which is what
// keeps the disabled-profiling overhead inside the <2% budget.
//
// Span time includes the post-gate global sync, so on the distributed
// tiers a gate's span covers its communication + wait phase — exactly the
// attribution the paper's scale-out analysis needs.
#pragma once

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "ir/op.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace svsim::obs {

class GateRecorder {
public:
  /// `collect_trace` additionally buffers one TraceEvent per gate per
  /// worker for the Chrome-trace exporter.
  GateRecorder(int n_workers, bool collect_trace)
      : tracks_(static_cast<std::size_t>(n_workers)), trace_(collect_trace) {}

  bool collect_trace() const { return trace_; }

  /// Buffer one scheduler-window span for the auxiliary "sched windows"
  /// trace track (caller gates on collect_trace(); one worker records per
  /// window — the window is a team-wide construct, not a per-PE one).
  void record_window(double t0_us, double t1_us, std::uint64_t window_id,
                     std::uint64_t n_gates, int block_exp) {
    char args[96];
    std::snprintf(args, sizeof args,
                  "\"window\":%llu,\"gates\":%llu,\"block_exp\":%d",
                  static_cast<unsigned long long>(window_id),
                  static_cast<unsigned long long>(n_gates), block_exp);
    TraceEvent e;
    e.name = "window";
    e.cat = "sched";
    e.ts_us = t0_us;
    e.dur_us = t1_us - t0_us;
    e.args = args;
    window_events_.push_back(std::move(e));
  }

  void record(int worker, OP op, double t0_us, double t1_us) {
    Track& t = tracks_[static_cast<std::size_t>(worker)];
    t.seconds[static_cast<std::size_t>(op)] += (t1_us - t0_us) * 1e-6;
    if (trace_) {
      TraceEvent e;
      e.name = op_name(op);
      e.ts_us = t0_us;
      e.dur_us = t1_us - t0_us;
      t.events.push_back(std::move(e));
    }
  }

  /// Merge per-gate-kind seconds into `report` and, if tracing, flush the
  /// buffered events to the global Trace under the `process` track.
  void finish(RunReport& report, const std::string& process) {
    report.profiled = true;
    for (const Track& t : tracks_) {
      for (int i = 0; i < kNumOps; ++i) {
        report.by_op[static_cast<std::size_t>(i)].seconds +=
            t.seconds[static_cast<std::size_t>(i)];
      }
    }
    if (trace_ && Trace::global().enabled()) {
      std::vector<std::vector<TraceEvent>> per_worker;
      per_worker.reserve(tracks_.size());
      for (Track& t : tracks_) per_worker.push_back(std::move(t.events));
      Trace::global().flush_run(process, std::move(per_worker));
      if (!window_events_.empty()) {
        Trace::global().flush_named_track(process, "sched windows",
                                          std::move(window_events_));
      }
    }
  }

private:
  struct alignas(64) Track {
    std::array<double, static_cast<std::size_t>(kNumOps)> seconds{};
    std::vector<TraceEvent> events;
  };
  std::vector<Track> tracks_;
  std::vector<TraceEvent> window_events_;
  bool trace_;
};

/// RAII profiling span around one gate application (including its sync).
/// No-op when `rec` is null.
class Span {
public:
  Span(GateRecorder* rec, int worker, OP op)
      : rec_(rec), worker_(worker), op_(op) {
    if (rec_ != nullptr) t0_us_ = trace_now_us();
  }
  ~Span() {
    if (rec_ != nullptr) rec_->record(worker_, op_, t0_us_, trace_now_us());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  GateRecorder* rec_;
  int worker_;
  OP op_;
  double t0_us_ = 0;
};

} // namespace svsim::obs
