// obs::aggregate — cross-PE timeline aggregation and the run-ledger.
//
// Input: one PeTimeline per PE (busy window + wait totals + time-ordered
// wait spans, all on the shared obs::wait_now_us() clock, with an optional
// per-PE clock offset for timelines recorded against different epochs —
// e.g. traces merged from separate processes). Output: the WaitProfile
// stored in RunReport — per-PE compute/comm/wait seconds that sum to each
// PE's wall time by construction, the load-imbalance factor (max/avg
// compute), the straggler PE, and the distributed critical path.
//
// Critical path model: global barriers are team-wide rendezvous, so the
// k-th barrier span on every PE belongs to the same collective (the SPMD
// gate loop guarantees an identical barrier sequence per PE — reductions
// record a single kReduction span on every PE alike, preserving
// alignment). The interval between consecutive barriers is a *phase*; the
// PE that arrives last (largest busy time within the phase) bounds the
// team's wall clock for that phase, and everyone else's barrier wait is
// exposure to that straggler. Summing bound time per (PE, phase label)
// names which PE's which compute phase the run is limited by.
//
// The ledger half is the cross-run telemetry store: an append-only JSONL
// file of report summaries keyed by circuit hash + config + CPU
// provenance, compared across runs by tools/svsim_analyze.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/jsonlite.hpp"
#include "obs/waitstate.hpp"

namespace svsim {
class Circuit;
}

namespace svsim::obs {

struct RunReport;

/// One PE's observed timeline, ready for aggregation. Timestamps are in
/// microseconds; `clock_offset_us` is added to every timestamp before
/// folding (0 when all PEs share the process epoch, as in-process runs
/// do).
struct PeTimeline {
  double t0_us = 0;
  double t1_us = 0;
  double clock_offset_us = 0;
  std::array<double, kNumWaitKinds> wait_seconds{};
  std::array<std::uint64_t, kNumWaitKinds> wait_count{};
  bool truncated = false;
  std::vector<WaitSpan> spans; // time-ordered
};

/// The cross-PE wait-state breakdown of one run. Defaults (enabled ==
/// false) when wait statistics were off or the backend has no PE team.
struct WaitProfile {
  bool enabled = false;

  struct PerPe {
    double wall_s = 0;      // PE busy window (bind .. unbind)
    double compute_s = 0;   // wall − waits (clamped at 0)
    double barrier_s = 0;
    double reduction_s = 0;
    double transfer_s = 0;
    std::uint64_t barrier_n = 0;
    std::uint64_t reduction_n = 0;
    std::uint64_t transfer_n = 0;

    double wait_s() const { return barrier_s + reduction_s + transfer_s; }
    double wait_fraction() const {
      return wall_s > 0 ? wait_s() / wall_s : 0;
    }
  };
  std::vector<PerPe> per_pe;

  double imbalance = 0;     // max/avg compute seconds across PEs
  int straggler = -1;       // PE with the most compute time
  double wait_fraction = 0; // total wait / total PE busy time
  bool truncated = false;   // some PE hit the span cap (totals still exact)

  /// One critical-path contributor: `seconds` of team wall-clock bounded
  /// by `pe` executing `phase` (the gate/op label active at the barrier).
  struct Critical {
    int pe = -1;
    std::string phase;
    double seconds = 0;
    std::uint64_t phases = 0; // barrier intervals attributed
  };
  std::vector<Critical> critical; // top contributors, descending seconds
  double critical_s = 0;          // total phase wall-clock accounted
  int critical_pe = -1;           // PE bounding the most wall-clock
  std::string critical_phase;     // its dominant phase label

  /// Aligned per-PE heatmap table for terminal display (shade = wait
  /// fraction relative to the worst PE).
  std::string table() const;
};

/// Fold per-PE timelines into the cross-PE profile. Consumes `pes`.
WaitProfile aggregate_timelines(std::vector<PeTimeline> pes);

/// Fold a run's WaitRecorder into `rep.waitstate` and, when tracing is
/// active, flush the wait spans onto the per-PE tracks of `process` (they
/// nest under the gate spans already there).
void fold_waitstate(RunReport& rep, WaitRecorder& rec,
                    const std::string& process);

/// "model name" from /proc/cpuinfo, or "unknown-cpu". Cached.
const std::string& cpu_model();

/// 64-bit FNV-1a over a circuit-shape digest (ops, operand qubits, angle
/// bits, width) — the run-ledger key component that identifies "the same
/// circuit" across runs and processes.
std::uint64_t hash_circuit(const Circuit& circuit);

/// Format a 64-bit hash the way the report/ledger JSON carries it.
std::string hash_hex(std::uint64_t h);

// ---------------------------------------------------------------------------
// Run ledger: append-only JSONL of report summaries ("svsim-ledger-v1").
// ---------------------------------------------------------------------------
namespace ledger {

inline constexpr const char* kSchema = "svsim-ledger-v1";

/// One ledger line: the durable summary of one run, keyed so that runs of
/// the same circuit + backend + team size + machine compare directly.
struct Entry {
  std::string key;          // circuit_hash:backend:wN:cpu-digest
  std::string circuit_hash; // hex
  std::string backend;
  long long n_qubits = 0;
  int n_workers = 0;
  std::uint64_t total_gates = 0;
  std::string cpu;
  long long unix_time = 0; // seconds; 0 = unknown
  double wall_seconds = 0;
  double compute_s = 0; // summed over PEs (0 when waitstats were off)
  double wait_s = 0;
  double imbalance = 0;
  std::string critical; // "PE 2 / cx" or ""
  std::uint64_t remote_bytes = 0;
  // Memory plane (additive svsim-ledger-v1 fields; 0 = plane off or a
  // pre-memory ledger line).
  std::uint64_t peak_rss_bytes = 0;    // max(VmHWM, last VmRSS) sampled
  std::uint64_t tracked_peak_bytes = 0; // registry high-water mark
  double est_err_pct = 0; // (estimate − tracked peak)/peak, percent
  // Communication-avoiding remap (additive; 0 = pass off or an older
  // ledger line).
  std::uint64_t remap_swaps = 0;

  /// Derive `key` from the identity fields.
  void rekey();
  /// One JSONL line (no trailing newline).
  std::string line() const;
};

/// Build an entry from a parsed svsim-report-v1 document. False (with
/// *err set) when the document lacks the schema marker or core fields.
bool entry_from_report(const jsonlite::Value& report, Entry* out,
                       std::string* err);

/// Parse one ledger line. False (with *err set) on invalid JSON, wrong
/// schema, or missing fields — the corrupt-line detection `svsim_analyze
/// --compare` reports.
bool parse_line(const std::string& line, Entry* out, std::string* err);

/// Human-readable cross-run comparison: entries grouped by key, each
/// group's runs in time order with wall-clock deltas vs the previous run
/// and the group best.
std::string compare(std::vector<Entry> entries);

} // namespace ledger
} // namespace svsim::obs
