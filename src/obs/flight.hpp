// obs::FlightRecorder — a crash-surviving record of the last moments of a
// run.
//
// Every worker/PE owns one fixed-size lock-free ring of FlightEvents
// (gate id, op kind, qubits, timestamp, event kind); the gate loops push
// one event per gate — a few plain stores, cheap enough to stay on by
// default. On a clean run the rings are drained into the RunReport; on a
// crash the SIGSEGV/SIGFPE/SIGABRT handlers (and a std::set_terminate
// hook) dump the rings plus a POD snapshot of the in-flight run to
// stderr with raw write(2), so the post-mortem story survives buffered
// stdio and partial teardown.
//
// Concurrency contract: each ring has exactly one writer (its worker);
// the crash handler and the drain path are readers. Entries read while a
// writer is mid-store can be torn — acceptable for forensics, and the
// monotonic `seq` makes torn tails recognizable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "ir/op.hpp"

namespace svsim::obs {

/// One recorded moment. POD so the signal handler can format it with
/// nothing but snprintf over plain memory.
struct FlightEvent {
  enum Kind : std::uint8_t {
    kGate = 0,       // a gate application is starting
    kComm = 1,       // a coarse-grained exchange/message op
    kCheckpoint = 2, // a health-monitor checkpoint completed
    kRunBegin = 3,   // a backend entered its gate loop
  };

  std::uint64_t seq = 0;  // per-worker monotonic event number
  double ts_us = 0;       // trace_now_us() timestamp
  std::uint64_t gate_id = 0;
  std::uint16_t kind = kGate;
  std::uint16_t op = 0;   // OP enum value (kGate/kComm)
  std::int16_t worker = 0;
  std::int32_t qb0 = -1;
  std::int32_t qb1 = -1;
};

const char* flight_kind_name(FlightEvent::Kind kind);

/// Single-writer ring of the most recent kCap events for one worker.
struct alignas(64) FlightRing {
  static constexpr std::size_t kCap = 256; // power of two
  static_assert((kCap & (kCap - 1)) == 0, "ring capacity must be pow2");

  std::atomic<std::uint64_t> head{0}; // total events ever pushed
  FlightEvent ev[kCap];

  void push(const FlightEvent& e) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    FlightEvent& slot = ev[h & (kCap - 1)];
    slot = e;
    slot.seq = h;
    head.store(h + 1, std::memory_order_release);
  }

  /// Oldest-first copy of the currently retained events.
  std::vector<FlightEvent> snapshot() const;
};

class FlightRecorder {
public:
  static constexpr int kMaxWorkers = 64;

  static FlightRecorder& global();

  /// Honors SVSIM_FLIGHT ("0" disables; default on). Read once.
  static bool env_enabled();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Called by a backend at the top of execute(): stamps the active-run
  /// snapshot the crash dump prints, installs the crash handlers on first
  /// use, and pushes a kRunBegin event on worker 0's ring. Rings are NOT
  /// cleared — events from earlier runs age out naturally, which is
  /// exactly what a flight recorder wants.
  void begin_run(const char* backend, IdxType n_qubits, int n_workers);

  /// The ring worker `w` should push to, or nullptr when the recorder is
  /// disabled or w >= kMaxWorkers (extra workers simply go unrecorded).
  FlightRing* ring(int worker) {
    if (!enabled() || worker < 0 || worker >= kMaxWorkers) return nullptr;
    return &rings_[worker];
  }

  /// Oldest-first merge of the first `n_workers` rings (for the report).
  std::vector<FlightEvent> drain(int n_workers) const;

  /// Async-signal-safe dump of the active-run snapshot and all non-empty
  /// rings to file descriptor `fd` (raw write(2), no stdio buffering).
  void dump(int fd) const;

  /// Install SIGSEGV/SIGFPE/SIGABRT handlers and a std::set_terminate
  /// hook that dump() to stderr, flush, then re-raise the default
  /// behavior. Idempotent; called automatically by begin_run().
  static void install_crash_handlers();

private:
  FlightRecorder();

  // POD snapshot of the in-flight run for the crash header.
  struct ActiveRun {
    char backend[24] = {0};
    long long n_qubits = 0;
    int n_workers = 0;
  };

  std::atomic<bool> enabled_;
  ActiveRun active_;
  FlightRing rings_[kMaxWorkers];
};

/// Install SIGINT/SIGTERM handlers for graceful shutdown: mark the live
/// progress run `"interrupted": true`, write a partial svsim-progress-v1
/// document (to the interrupt-report path when set, stderr otherwise),
/// best-effort rewrite the Chrome trace (Trace::try_write), and _exit
/// with the conventional status (130 for SIGINT, 143 for SIGTERM).
/// SA_RESETHAND: a second Ctrl-C kills the process immediately.
/// Idempotent; called by FlightRecorder::begin_run and the telemetry
/// endpoint activation.
void install_shutdown_handlers();

/// File the interrupt flush writes its partial progress document to
/// ("" = stderr). Must be called before the signal can arrive; the path
/// is copied into static storage the handler can read without locking.
void set_interrupt_report_path(const char* path);

} // namespace svsim::obs
