// obs::HealthMonitor — streaming numerical-invariant checks over the
// partitioned state vector.
//
// A state-vector simulation has two invariants worth watching while it
// runs: every amplitude stays finite, and ‖ψ‖² stays 1 (unitary gates
// preserve it; measurement renormalizes it). Silent violations — a NaN
// injected by a bad initial state, norm drift accumulated over millions
// of rotation gates — corrupt every downstream sample without any
// visible failure. The monitor checks both at a configurable gate
// cadence: each worker SIMD-scans its *local* partition (no extra
// communication beyond one reduction), worker 0 records the globally
// reduced result, and every worker evaluates the same escalation
// decision so distributed backends break out of the gate loop together
// instead of deadlocking at the next barrier.
//
// Escalation policy: every violation counts (HealthStats), violations
// above the warn threshold log WARN, and drift above the abort
// threshold (or any non-finite value when abort-on-NaN is set) stops
// the run with HealthStats::aborted — the run's report survives, the
// state vector is left as-is for forensics.
//
// Activation: SimConfig::health_every_n, or the SVSIM_HEALTH=<n>
// environment variable (checkpoint every n gates; SVSIM_HEALTH=1 checks
// after every gate). SVSIM_HEALTH_ABORT=<drift> sets the abort
// threshold and turns on abort-on-NaN.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "obs/report.hpp"

namespace svsim::obs {

/// SIMD scan of one partition: accumulates Σ(re²+im²) into *norm2 and
/// counts non-finite (NaN/Inf) values into *non_finite. Uses the widest
/// available vector path (AVX-512 / AVX2 / scalar).
void scan_amplitudes(const ValType* re, const ValType* im, IdxType count,
                     double* norm2, std::uint64_t* non_finite);

/// Process-global mirror of the most recent monitor's reduced results,
/// published atomically from HealthMonitor::observe so the embedded
/// httpd's /healthz endpoint (and anything else off the worker threads)
/// can read liveness without reaching into a run's HealthMonitor.
struct HealthSnapshot {
  bool monitored = false; // a monitor has been constructed this process
  std::uint64_t checks = 0;
  std::uint64_t nan_checks = 0;
  std::uint64_t warns = 0;
  std::uint64_t non_finite = 0;
  double last_norm2 = 1.0;
  double max_drift = 0;
  bool aborted = false;

  /// Same predicate as HealthStats::tripped().
  bool tripped() const {
    return nan_checks != 0 || warns != 0 || aborted;
  }
};

/// Read the global mirror (relaxed loads; fields are individually atomic,
/// which is coherent enough for a liveness endpoint).
HealthSnapshot health_snapshot();

/// Reset the mirror and mark the process monitored. Called from the
/// HealthMonitor constructor.
void health_mirror_begin();

/// Publish one checkpoint's accumulated stats into the mirror. Called
/// from HealthMonitor::observe (worker 0 only — single writer).
void health_mirror_publish(const HealthStats& stats);

/// Checkpoint cadence from SVSIM_HEALTH (0 = unset/off). Read once.
int env_health_every();

/// Abort drift threshold from SVSIM_HEALTH_ABORT (0 = unset). Read once.
double env_health_abort();

class HealthMonitor {
public:
  struct Options {
    int every_n = 0;           // <= 0: monitoring off
    double warn_drift = 1e-6;  // |‖ψ‖²−1| above this logs WARN + counts
    double abort_drift = 0;    // 0 = never abort on drift
    bool abort_on_nan = false; // abort as soon as a non-finite amp appears
  };

  /// Merge SimConfig fields with the SVSIM_HEALTH / SVSIM_HEALTH_ABORT
  /// environment (config wins where it is explicitly set).
  static Options options(const SimConfig& cfg);

  explicit HealthMonitor(Options opt) : opt_(opt) {
    stats_.enabled = true;
    stats_.every_n = opt.every_n;
    health_mirror_begin();
  }

  int every_n() const { return opt_.every_n; }

  /// Record one checkpoint from globally reduced values. Exactly one
  /// worker (worker 0) calls this per checkpoint; it updates the stats
  /// and performs the WARN-log escalation.
  void observe(std::uint64_t gate_hi, double norm2, std::uint64_t non_finite);

  /// The abort decision as a pure function of the reduced values, so
  /// every worker — each holding the same reduction result — reaches the
  /// same verdict and distributed gate loops stop in lockstep.
  bool should_abort(double norm2, std::uint64_t non_finite) const;

  const HealthStats& stats() const { return stats_; }

  /// Fold the accumulated stats into the run's report.
  void finish(RunReport& report) { report.health = stats_; }

private:
  Options opt_;
  HealthStats stats_;
  std::uint64_t prev_gate_ = 0; // gate index of the previous checkpoint
};

} // namespace svsim::obs
