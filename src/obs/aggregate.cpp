#include "obs/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "ir/circuit.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace svsim::obs {

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

WaitProfile aggregate_timelines(std::vector<PeTimeline> pes) {
  WaitProfile p;
  if (pes.empty()) return p;
  p.enabled = true;
  const int n = static_cast<int>(pes.size());

  // Clock alignment: shift every PE onto one timeline before folding.
  for (PeTimeline& tl : pes) {
    if (tl.clock_offset_us == 0) continue;
    tl.t0_us += tl.clock_offset_us;
    tl.t1_us += tl.clock_offset_us;
    for (WaitSpan& s : tl.spans) {
      s.t0_us += tl.clock_offset_us;
      s.t1_us += tl.clock_offset_us;
    }
  }

  // Per-PE breakdown: compute is the busy window minus attributed waits,
  // so compute + barrier + reduction + transfer == wall per PE exactly.
  p.per_pe.resize(static_cast<std::size_t>(n));
  double compute_sum = 0;
  double compute_max = 0;
  double wait_sum = 0;
  double wall_sum = 0;
  for (int w = 0; w < n; ++w) {
    const PeTimeline& tl = pes[static_cast<std::size_t>(w)];
    WaitProfile::PerPe& pe = p.per_pe[static_cast<std::size_t>(w)];
    pe.wall_s = std::max(0.0, (tl.t1_us - tl.t0_us) * 1e-6);
    pe.barrier_s = tl.wait_seconds[0];
    pe.reduction_s = tl.wait_seconds[1];
    pe.transfer_s = tl.wait_seconds[2];
    pe.barrier_n = tl.wait_count[0];
    pe.reduction_n = tl.wait_count[1];
    pe.transfer_n = tl.wait_count[2];
    pe.compute_s = std::max(0.0, pe.wall_s - pe.wait_s());
    p.truncated = p.truncated || tl.truncated;
    compute_sum += pe.compute_s;
    compute_max = std::max(compute_max, pe.compute_s);
    wait_sum += pe.wait_s();
    wall_sum += pe.wall_s;
    if (p.straggler < 0 ||
        pe.compute_s >
            p.per_pe[static_cast<std::size_t>(p.straggler)].compute_s) {
      p.straggler = w;
    }
  }
  const double compute_avg = compute_sum / static_cast<double>(n);
  p.imbalance = compute_avg > 0 ? compute_max / compute_avg : 0;
  p.wait_fraction = wall_sum > 0 ? wait_sum / wall_sum : 0;

  // Distributed critical path. Global barriers are team rendezvous: the
  // k-th kBarrier span on every PE belongs to the same collective, so the
  // intervals between consecutive barriers partition the run into phases.
  // Within phase k, PE busy time = barrier-arrival − previous-barrier-end;
  // the largest arrival bounds the team's wall clock for that phase.
  std::vector<std::vector<const WaitSpan*>> barriers(
      static_cast<std::size_t>(n));
  std::size_t m = static_cast<std::size_t>(-1);
  for (int w = 0; w < n; ++w) {
    auto& bs = barriers[static_cast<std::size_t>(w)];
    for (const WaitSpan& s : pes[static_cast<std::size_t>(w)].spans) {
      if (s.kind == WaitKind::kBarrier) bs.push_back(&s);
    }
    m = std::min(m, bs.size());
  }
  if (m == 0 || m == static_cast<std::size_t>(-1)) return p;

  struct Acc {
    double seconds = 0;
    std::uint64_t phases = 0;
  };
  std::map<std::pair<int, std::string>, Acc> by_pe_phase;
  std::vector<double> bound_by_pe(static_cast<std::size_t>(n), 0);
  for (std::size_t k = 0; k < m; ++k) {
    int crit = 0;
    double worst = -1;
    for (int w = 0; w < n; ++w) {
      const PeTimeline& tl = pes[static_cast<std::size_t>(w)];
      const auto& bs = barriers[static_cast<std::size_t>(w)];
      const double start = k == 0 ? tl.t0_us : bs[k - 1]->t1_us;
      const double busy = std::max(0.0, bs[k]->t0_us - start);
      if (busy > worst) {
        worst = busy;
        crit = w;
      }
    }
    const WaitSpan* s = barriers[static_cast<std::size_t>(crit)][k];
    Acc& acc = by_pe_phase[{crit, std::string(s->phase)}];
    acc.seconds += worst * 1e-6;
    ++acc.phases;
    bound_by_pe[static_cast<std::size_t>(crit)] += worst * 1e-6;
    p.critical_s += worst * 1e-6;
  }
  for (int w = 0; w < n; ++w) {
    if (p.critical_pe < 0 ||
        bound_by_pe[static_cast<std::size_t>(w)] >
            bound_by_pe[static_cast<std::size_t>(p.critical_pe)]) {
      p.critical_pe = w;
    }
  }
  for (const auto& [key, acc] : by_pe_phase) {
    p.critical.push_back(
        WaitProfile::Critical{key.first, key.second, acc.seconds, acc.phases});
  }
  std::sort(p.critical.begin(), p.critical.end(),
            [](const WaitProfile::Critical& a, const WaitProfile::Critical& b) {
              return a.seconds > b.seconds;
            });
  for (const WaitProfile::Critical& c : p.critical) {
    if (c.pe == p.critical_pe) {
      p.critical_phase = c.phase;
      break;
    }
  }
  constexpr std::size_t kMaxCritical = 8;
  if (p.critical.size() > kMaxCritical) p.critical.resize(kMaxCritical);
  return p;
}

std::string WaitProfile::table() const {
  std::ostringstream os;
  if (!enabled || per_pe.empty()) {
    return "  wait-state: (not recorded)\n";
  }
  os << "  wait-state per PE (compute = busy - wait; bar = wait fraction):\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "    %-4s %10s %10s %9s %9s %9s %7s\n",
                "PE", "wall ms", "compute", "barrier", "reduce", "xfer",
                "wait%");
  os << buf;
  double worst_frac = 0;
  for (const PerPe& pe : per_pe) {
    worst_frac = std::max(worst_frac, pe.wait_fraction());
  }
  for (std::size_t w = 0; w < per_pe.size(); ++w) {
    const PerPe& pe = per_pe[w];
    const double frac = pe.wait_fraction();
    std::snprintf(buf, sizeof(buf),
                  "    %-4zu %10.3f %10.3f %9.3f %9.3f %9.3f %6.1f%% ", w,
                  pe.wall_s * 1e3, pe.compute_s * 1e3, pe.barrier_s * 1e3,
                  pe.reduction_s * 1e3, pe.transfer_s * 1e3, frac * 100.0);
    os << buf;
    // Heat bar relative to the worst PE, 10 cells.
    const int cells =
        worst_frac > 0 ? static_cast<int>(frac / worst_frac * 10.0 + 0.5) : 0;
    for (int c = 0; c < cells; ++c) os << '#';
    os << '\n';
  }
  return os.str();
}

void fold_waitstate(RunReport& rep, WaitRecorder& rec,
                    const std::string& process) {
  // Flush wait spans onto the trace's per-PE tracks first (the fold below
  // consumes the spans). They interleave with the gate spans already on
  // the same tids, nesting the wait inside its gate.
  if (Trace::global().enabled()) {
    std::vector<std::vector<TraceEvent>> per_worker(
        static_cast<std::size_t>(rec.n_workers()));
    char args[96];
    for (int w = 0; w < rec.n_workers(); ++w) {
      const WaitTrack& t = rec.track(w);
      auto& evs = per_worker[static_cast<std::size_t>(w)];
      evs.reserve(t.spans.size());
      for (const WaitSpan& s : t.spans) {
        TraceEvent e;
        e.name = wait_kind_name(s.kind);
        e.cat = "wait";
        e.ts_us = s.t0_us;
        e.dur_us = s.t1_us - s.t0_us;
        std::snprintf(args, sizeof(args), "\"phase\":\"%s\"", s.phase);
        e.args = args;
        evs.push_back(std::move(e));
      }
    }
    Trace::global().flush_run(process, std::move(per_worker));
  }

  std::vector<PeTimeline> pes(static_cast<std::size_t>(rec.n_workers()));
  for (int w = 0; w < rec.n_workers(); ++w) {
    WaitTrack& t = rec.track(w);
    PeTimeline& tl = pes[static_cast<std::size_t>(w)];
    tl.t0_us = t.t0_us;
    tl.t1_us = t.t1_us;
    tl.wait_seconds = t.seconds;
    tl.wait_count = t.count;
    tl.truncated = t.truncated;
    tl.spans = std::move(t.spans);
  }
  rep.waitstate = aggregate_timelines(std::move(pes));
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

const std::string& cpu_model() {
  static const std::string model = [] {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("model name", 0) == 0) {
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
          std::size_t b = colon + 1;
          while (b < line.size() && line[b] == ' ') ++b;
          return line.substr(b);
        }
      }
    }
    return std::string("unknown-cpu");
  }();
  return model;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv(std::uint64_t* h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

template <typename T>
inline void fnv_pod(std::uint64_t* h, T v) {
  fnv(h, &v, sizeof(v));
}

std::uint64_t fnv_str(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  fnv(&h, s.data(), s.size());
  return h;
}

} // namespace

std::uint64_t hash_circuit(const Circuit& circuit) {
  std::uint64_t h = kFnvOffset;
  fnv_pod(&h, static_cast<std::int64_t>(circuit.n_qubits()));
  for (const Gate& g : circuit.gates()) {
    fnv_pod(&h, static_cast<std::int32_t>(g.op));
    fnv_pod(&h, static_cast<std::int64_t>(g.qb0));
    fnv_pod(&h, static_cast<std::int64_t>(g.qb1));
    fnv_pod(&h, static_cast<std::int64_t>(g.cbit));
    fnv_pod(&h, g.theta);
    fnv_pod(&h, g.phi);
    fnv_pod(&h, g.lam);
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// ---------------------------------------------------------------------------
// Run ledger
// ---------------------------------------------------------------------------

namespace ledger {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostringstream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

} // namespace

void Entry::rekey() {
  std::ostringstream os;
  os << circuit_hash << ':' << backend << ":w" << n_workers << ':'
     << hash_hex(fnv_str(cpu)).substr(8); // short CPU digest
  key = os.str();
}

std::string Entry::line() const {
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"key\":";
  append_escaped(os, key);
  os << ",\"circuit_hash\":";
  append_escaped(os, circuit_hash);
  os << ",\"backend\":";
  append_escaped(os, backend);
  os << ",\"n_qubits\":" << n_qubits << ",\"n_workers\":" << n_workers
     << ",\"total_gates\":" << static_cast<unsigned long long>(total_gates)
     << ",\"cpu\":";
  append_escaped(os, cpu);
  os << ",\"unix_time\":" << unix_time << ",\"wall_seconds\":";
  append_double(os, wall_seconds);
  os << ",\"compute_s\":";
  append_double(os, compute_s);
  os << ",\"wait_s\":";
  append_double(os, wait_s);
  os << ",\"imbalance\":";
  append_double(os, imbalance);
  os << ",\"critical\":";
  append_escaped(os, critical);
  os << ",\"remote_bytes\":" << static_cast<unsigned long long>(remote_bytes)
     << ",\"peak_rss_bytes\":"
     << static_cast<unsigned long long>(peak_rss_bytes)
     << ",\"tracked_peak_bytes\":"
     << static_cast<unsigned long long>(tracked_peak_bytes)
     << ",\"est_err_pct\":";
  append_double(os, est_err_pct);
  os << ",\"remap_swaps\":" << static_cast<unsigned long long>(remap_swaps)
     << '}';
  return os.str();
}

bool entry_from_report(const jsonlite::Value& report, Entry* out,
                       std::string* err) {
  *out = Entry{};
  if (!report.is_object() ||
      report.member_str("schema", "") != "svsim-report-v1") {
    if (err != nullptr) *err = "not an svsim-report-v1 document";
    return false;
  }
  out->backend = report.member_str("backend", "");
  if (out->backend.empty()) {
    if (err != nullptr) *err = "report has no backend";
    return false;
  }
  out->circuit_hash = report.member_str("circuit_hash", "");
  out->cpu = report.member_str("cpu", "");
  out->n_qubits = static_cast<long long>(report.member_num("n_qubits", 0));
  out->n_workers = static_cast<int>(report.member_num("n_workers", 1));
  out->total_gates =
      static_cast<std::uint64_t>(report.member_num("total_gates", 0));
  out->wall_seconds = report.member_num("wall_seconds", 0);

  const jsonlite::Value* ws = report.find("waitstate");
  const jsonlite::Value* ws_on =
      ws != nullptr && ws->is_object() ? ws->find("enabled") : nullptr;
  if (ws_on != nullptr && ws_on->bool_or(false)) {
    if (const jsonlite::Value* per = ws->find("per_pe");
        per != nullptr && per->is_array()) {
      for (const jsonlite::Value& pe : per->items) {
        out->compute_s += pe.member_num("compute_s", 0);
        out->wait_s += pe.member_num("wait_s", 0);
      }
    }
    out->imbalance = ws->member_num("imbalance", 0);
    const int cpe = static_cast<int>(ws->member_num("critical_pe", -1));
    const std::string phase = ws->member_str("critical_phase", "");
    if (cpe >= 0 && !phase.empty()) {
      out->critical = "PE " + std::to_string(cpe) + " / " + phase;
    }
  }
  if (const jsonlite::Value* m = report.find("traffic_matrix");
      m != nullptr && m->is_object()) {
    out->remote_bytes =
        static_cast<std::uint64_t>(m->member_num("remote_bytes", 0));
  }
  if (const jsonlite::Value* mem = report.find("memory");
      mem != nullptr && mem->is_object() &&
      mem->find("enabled") != nullptr &&
      mem->find("enabled")->bool_or(false)) {
    out->peak_rss_bytes =
        static_cast<std::uint64_t>(mem->member_num("peak_rss", 0));
    out->tracked_peak_bytes =
        static_cast<std::uint64_t>(mem->member_num("tracked_peak", 0));
    out->est_err_pct = mem->member_num("estimate_error", 0) * 100.0;
  }
  if (const jsonlite::Value* rm = report.find("remap");
      rm != nullptr && rm->is_object() && rm->find("enabled") != nullptr &&
      rm->find("enabled")->bool_or(false)) {
    out->remap_swaps =
        static_cast<std::uint64_t>(rm->member_num("swaps_inserted", 0));
  }
  out->rekey();
  return true;
}

bool parse_line(const std::string& line, Entry* out, std::string* err) {
  jsonlite::Value v;
  std::size_t off = 0;
  if (!jsonlite::parse(line, &v, &off)) {
    if (err != nullptr) {
      *err = "invalid JSON (error at byte " + std::to_string(off) + ")";
    }
    return false;
  }
  if (!v.is_object() || v.member_str("schema", "") != kSchema) {
    if (err != nullptr) *err = std::string("missing ") + kSchema + " schema";
    return false;
  }
  *out = Entry{};
  out->key = v.member_str("key", "");
  out->circuit_hash = v.member_str("circuit_hash", "");
  out->backend = v.member_str("backend", "");
  out->n_qubits = static_cast<long long>(v.member_num("n_qubits", 0));
  out->n_workers = static_cast<int>(v.member_num("n_workers", 0));
  out->total_gates = static_cast<std::uint64_t>(v.member_num("total_gates", 0));
  out->cpu = v.member_str("cpu", "");
  out->unix_time = static_cast<long long>(v.member_num("unix_time", 0));
  out->wall_seconds = v.member_num("wall_seconds", -1);
  out->compute_s = v.member_num("compute_s", 0);
  out->wait_s = v.member_num("wait_s", 0);
  out->imbalance = v.member_num("imbalance", 0);
  out->critical = v.member_str("critical", "");
  out->remote_bytes =
      static_cast<std::uint64_t>(v.member_num("remote_bytes", 0));
  out->peak_rss_bytes =
      static_cast<std::uint64_t>(v.member_num("peak_rss_bytes", 0));
  out->tracked_peak_bytes =
      static_cast<std::uint64_t>(v.member_num("tracked_peak_bytes", 0));
  out->est_err_pct = v.member_num("est_err_pct", 0);
  out->remap_swaps =
      static_cast<std::uint64_t>(v.member_num("remap_swaps", 0));
  if (out->key.empty() || out->backend.empty() || out->wall_seconds < 0) {
    if (err != nullptr) *err = "ledger entry lacks key/backend/wall_seconds";
    return false;
  }
  return true;
}

std::string compare(std::vector<Entry> entries) {
  std::ostringstream os;
  if (entries.empty()) return "ledger: no entries\n";
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.unix_time < b.unix_time;
                   });
  char buf[240];
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    double best = entries[i].wall_seconds;
    while (j < entries.size() && entries[j].key == entries[i].key) {
      best = std::min(best, entries[j].wall_seconds);
      ++j;
    }
    const Entry& head = entries[i];
    os << head.key << "  (" << head.backend << ", n=" << head.n_qubits
       << ", w" << head.n_workers << ", " << head.total_gates << " gates, "
       << (head.cpu.empty() ? "unknown-cpu" : head.cpu) << ")\n";
    std::snprintf(buf, sizeof(buf),
                  "    %-4s %12s %10s %10s %7s %8s %8s %10s %8s  %s\n", "run",
                  "wall ms", "compute", "wait", "imbal", "vs prev", "vs best",
                  "peak rss", "est err", "critical");
    os << buf;
    for (std::size_t k = i; k < j; ++k) {
      const Entry& e = entries[k];
      const double prev = k > i ? entries[k - 1].wall_seconds : 0;
      char dprev[16] = "-";
      char dbest[16] = "-";
      if (k > i && prev > 0) {
        std::snprintf(dprev, sizeof(dprev), "%+.1f%%",
                      (e.wall_seconds / prev - 1.0) * 100.0);
      }
      if (best > 0) {
        std::snprintf(dbest, sizeof(dbest), "%+.1f%%",
                      (e.wall_seconds / best - 1.0) * 100.0);
      }
      // "-" for pre-memory ledger lines or runs with the plane off.
      char rss[16] = "-";
      char eerr[16] = "-";
      if (e.peak_rss_bytes > 0) {
        std::snprintf(rss, sizeof(rss), "%.1fM",
                      static_cast<double>(e.peak_rss_bytes) / (1024.0 * 1024.0));
      }
      if (e.tracked_peak_bytes > 0) {
        std::snprintf(eerr, sizeof(eerr), "%+.1f%%", e.est_err_pct);
      }
      std::snprintf(buf, sizeof(buf),
                    "    %-4zu %12.3f %10.3f %10.3f %7.2f %8s %8s %10s %8s  %s\n",
                    k - i, e.wall_seconds * 1e3, e.compute_s * 1e3,
                    e.wait_s * 1e3, e.imbalance, dprev, dbest, rss, eerr,
                    e.critical.empty() ? "-" : e.critical.c_str());
      os << buf;
    }
    i = j;
  }
  return os.str();
}

} // namespace ledger
} // namespace svsim::obs
