// obs::RunReport — the backend-neutral observability record of one run().
//
// Every Simulator fills one of these per run: gate counts by kind
// (always), per-gate-kind accumulated time (when profiling is on), the
// fusion stats of the circuit it executed (when the caller fused), and
// the unified communication totals that previously lived in three
// backend-specific structs (shmem::TrafficStats, PeerTraffic, MsgStats).
// Retrieved through the non-virtual Simulator::last_report().
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "ir/fusion.hpp"
#include "ir/op.hpp"
#include "shmem/shmem.hpp"

namespace svsim {
class Circuit;
}

namespace svsim::obs {

/// Communication totals in the vocabulary all three distributed tiers
/// share. "Ops" are element-granular one-sided accesses (peer pointer
/// dereferences, SHMEM get/put); "messages" are the coarse baseline's
/// whole-partition sends. Single-device backends leave everything zero.
struct CommStats {
  std::uint64_t local_ops = 0;
  std::uint64_t remote_ops = 0;
  std::uint64_t bytes = 0;    // payload bytes moved (get+put / messages)
  std::uint64_t messages = 0; // two-sided sends (coarse baseline only)
  std::uint64_t barriers = 0; // global syncs (where the runtime counts them)

  void add_shmem(const shmem::TrafficStats& t);
  void add_peer(std::uint64_t local_access, std::uint64_t remote_access);
  void add_messages(std::uint64_t messages_, std::uint64_t bytes_);
};

struct GateKindStats {
  std::uint64_t count = 0;
  double seconds = 0; // CPU-seconds summed over workers; 0 unless profiled
};

struct RunReport {
  std::string backend;
  IdxType n_qubits = 0;
  int n_workers = 1;

  std::uint64_t total_gates = 0;
  double wall_seconds = 0;
  bool profiled = false; // per-gate-kind timing collected?

  std::array<GateKindStats, static_cast<std::size_t>(kNumOps)> by_op{};
  FusionStats fusion; // zeros unless the circuit went through run_fused()
  CommStats comm;

  const GateKindStats& of(OP op) const {
    return by_op[static_cast<std::size_t>(op)];
  }

  /// Human-readable per-gate-kind breakdown + comm totals.
  std::string summary() const;
};

/// Count `circuit`'s gates by kind into `report` (cheap; runs even with
/// profiling off so every report has the count breakdown).
void tally_gates(RunReport& report, const Circuit& circuit);

} // namespace svsim::obs
