// obs::RunReport — the backend-neutral observability record of one run().
//
// Every Simulator fills one of these per run: gate counts by kind
// (always), per-gate-kind accumulated time (when profiling is on), the
// fusion stats of the circuit it executed (when the caller fused), the
// unified communication totals that previously lived in three
// backend-specific structs (shmem::TrafficStats, PeerTraffic, MsgStats),
// and — since the health/forensics tier — numerical-health results
// (HealthStats), the per-PE×PE traffic matrix with imbalance metrics
// (TrafficMatrix), and the flight-recorder events drained on success.
// Retrieved through the non-virtual Simulator::last_report(); exported as
// JSON by obs::to_json().
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "ir/fusion.hpp"
#include "ir/op.hpp"
#include "obs/aggregate.hpp"
#include "obs/flight.hpp"
#include "shmem/shmem.hpp"

namespace svsim {
class Circuit;
}

namespace svsim::obs {

/// Communication totals in the vocabulary all three distributed tiers
/// share. "Ops" are element-granular one-sided accesses (peer pointer
/// dereferences, SHMEM get/put); "messages" are the coarse baseline's
/// whole-partition sends. Single-device backends leave everything zero.
struct CommStats {
  std::uint64_t local_ops = 0;
  std::uint64_t remote_ops = 0;
  std::uint64_t bytes = 0;    // payload bytes moved (get+put / messages)
  std::uint64_t messages = 0; // two-sided sends (coarse baseline only)
  std::uint64_t barriers = 0; // global syncs (where the runtime counts them)

  void add_shmem(const shmem::TrafficStats& t);
  void add_peer(std::uint64_t local_access, std::uint64_t remote_access);
  void add_messages(std::uint64_t messages_, std::uint64_t bytes_);
};

struct GateKindStats {
  std::uint64_t count = 0;
  double seconds = 0; // CPU-seconds summed over workers; 0 unless profiled
};

/// Result of the streaming numerical-invariant checks (HealthMonitor).
/// All-zero/defaults unless the monitor was enabled for the run.
struct HealthStats {
  bool enabled = false;
  int every_n = 0;              // checkpoint cadence in gates
  std::uint64_t checks = 0;     // checkpoints evaluated
  std::uint64_t nan_checks = 0; // checkpoints that saw non-finite amplitudes
  std::uint64_t non_finite = 0; // worst per-checkpoint non-finite amp count
  double max_drift = 0;         // running max of |‖ψ‖² − 1|
  double last_norm2 = 1.0;      // ‖ψ‖² at the last checkpoint
  std::uint64_t drift_gate_lo = 0; // gate range (lo, hi] that introduced
  std::uint64_t drift_gate_hi = 0; // the max drift
  std::uint64_t warns = 0;      // checkpoints above the warn threshold
  bool aborted = false;         // escalation stopped the run early

  /// Anything worth a non-zero exit code from a runner?
  bool tripped() const { return nan_checks != 0 || warns != 0 || aborted; }
};

/// Outcome of the cache-blocked gate-window scheduler (ir/schedule +
/// kernels/blocked). Defaults when scheduling was off for the run.
struct SchedulerStats {
  bool enabled = false; // scheduling resolved on for the run
  bool active = false;  // at least one blocked window actually executed
  int block_exp = 0;    // 2^b amplitudes per cache block
  std::uint64_t windows = 0;        // blocked windows formed
  std::uint64_t windowed_gates = 0; // gates inside blocked windows
  std::uint64_t passes_saved = 0;   // full-state sweeps avoided
  /// passes_saved × 16 bytes × dim: memory traffic a per-gate loop would
  /// have issued that the blocked loop kept cache-resident.
  std::uint64_t traffic_avoided_bytes = 0;
};

/// Outcome of the communication-avoiding remap pass (ir/remap) for the
/// last run(). Defaults when remapping was off or the backend is not
/// partitioned. `modeled_*` price full-state sweeps that cross the
/// partition boundary (2^n amplitudes × 16 bytes per offending gate);
/// the measured TrafficMatrix is the ground truth the model predicts.
struct RemapStats {
  bool enabled = false; // remap resolved on for the run
  bool active = false;  // the pass actually ran (partitioned, >= 2 local bits)
  int local_bits = 0;   // node-local index bits the pass targeted
  std::uint64_t swaps_inserted = 0;
  std::uint64_t modeled_remote_bytes_before = 0;
  std::uint64_t modeled_remote_bytes_after = 0;
};

/// Roofline attribution of the last run(): the analytic cost model's
/// expected footprint (obs/perfmodel), the hardware-counter sample around
/// the gate loop (obs/counters, perf_event_open), and their join against
/// the machine model's STREAM-style peak bandwidth. Defaults when the
/// roofline tier was off; `counters == false` with a non-empty
/// `counters_error` is the graceful model-only degradation (CI
/// containers, non-Linux hosts).
struct RooflineStats {
  bool enabled = false;
  // Analytic expectation for the executed circuit.
  double model_amps = 0;
  double model_bytes = 0;       // per-gate-loop memory traffic
  double model_bytes_sched = 0; // traffic under the blocked schedule
  double model_flops = 0;
  double ai = 0; // arithmetic intensity: flops per scheduled byte
  // Join against the machine model.
  double peak_gbps = 0;  // STREAM-style peak (SVSIM_PEAK_GBPS overrides)
  double model_gbps = 0; // model_bytes_sched / wall_seconds
  double attainment = 0; // model_gbps / peak_gbps
  // Hardware counters, multiplex-scaled; zero when unavailable.
  bool counters = false;
  std::string counters_error; // why unavailable ("EPERM", ...)
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
  double measured_gbps = 0; // llc_misses × 64-byte lines / wall

  /// One op kind's achieved bandwidth vs the roofline, from the profiled
  /// per-op seconds (wall-apportioned across workers).
  struct OpAttainment {
    OP op = OP::ID;
    std::uint64_t count = 0;
    double bytes = 0;
    double seconds = 0;
    double gbps = 0;
    double attainment = 0;
  };
  /// Worst-attainment op kinds, ascending (at most 10); filled only on
  /// profiled runs (per-op seconds require profiling).
  std::vector<OpAttainment> worst;
};

/// Per-PE×PE communication volume from the last run(), row-major
/// [src * n + dst] in bytes moved by one-sided ops issued by `src`
/// targeting `dst` (diagonal = local traffic). Empty (n == 0) for
/// single-device backends and when traffic counting is off.
struct TrafficMatrix {
  int n = 0;
  std::vector<std::uint64_t> bytes;

  bool empty() const { return n == 0; }
  std::uint64_t at(int src, int dst) const {
    return bytes[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dst)];
  }
  std::uint64_t total() const;
  std::uint64_t row_sum(int src) const;    // bytes issued by src
  std::uint64_t col_sum(int dst) const;    // bytes landing on dst
  std::uint64_t remote_total() const;      // off-diagonal only

  /// Derived imbalance metrics over the off-diagonal links.
  struct Imbalance {
    double max_mean_ratio = 0; // busiest link / mean non-zero link
    int busiest_src = -1;
    int busiest_dst = -1;
    std::uint64_t busiest_bytes = 0;
  };
  Imbalance imbalance() const;

  /// Aligned heatmap-style table (one row per source PE, shaded cells
  /// relative to the busiest link) for terminal display.
  std::string table() const;
};

/// Bytes-resident attribution of the last run() (obs/memtrack +
/// obs/capacity): exact tagged-allocation accounting, the sampled
/// process RSS / NUMA placement, and the analytic footprint estimate.
/// Defaults when SVSIM_MEMTRACK=0; `sampled == false` / `numa == false`
/// with error strings are the graceful degradations on hosts without a
/// readable procfs or with the NUMA syscalls denied.
struct MemoryStats {
  bool enabled = false;
  // Tagged allocation registry (exact, kernel-independent).
  std::uint64_t tracked_bytes = 0; // live at report time
  std::uint64_t tracked_peak = 0;  // high-water of tracked bytes
  double peak_ts_us = 0;           // trace-clock time of the high-water
  struct Tag {
    std::string name;
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
  };
  std::vector<Tag> tags;
  struct Pe {
    int pe = -1;
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
    int node = -1; // dominant NUMA node of the PE's buffers (-1 unknown)
  };
  std::vector<Pe> per_pe;
  // Process sample (/proc/self/status + smaps_rollup).
  bool sampled = false;
  std::string sample_error;
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss = 0; // max(VmHWM, last VmRSS)
  std::uint64_t baseline_rss = 0; // VmRSS before the first tracked alloc
  std::uint64_t thp_bytes = 0;
  std::uint64_t samples = 0;
  // NUMA page placement of tracked buffers (move_pages/get_mempolicy).
  bool numa = false;
  std::string numa_error;
  std::vector<std::uint64_t> node_bytes;
  // Analytic estimate (obs/capacity) for this run's shape.
  double estimated_bytes = 0;

  /// Relative error of the estimate against the tracked peak (the
  /// deterministic surface the 10% acceptance bound is pinned on).
  double estimate_error() const {
    if (tracked_peak == 0) return 0;
    return (estimated_bytes - static_cast<double>(tracked_peak)) /
           static_cast<double>(tracked_peak);
  }
};

struct RunReport {
  std::string backend;
  IdxType n_qubits = 0;
  int n_workers = 1;
  /// State vectors evolved in lockstep by this run (BatchedSim); 1 for
  /// every solo backend. Additive svsim-report-v1 field.
  int batch = 1;

  std::uint64_t total_gates = 0;
  double wall_seconds = 0;
  bool profiled = false; // per-gate-kind timing collected?
  /// FNV-1a digest of the executed circuit's shape (ops, qubits, angle
  /// bits, width) — the run-ledger identity of "the same circuit".
  std::uint64_t circuit_hash = 0;

  std::array<GateKindStats, static_cast<std::size_t>(kNumOps)> by_op{};
  FusionStats fusion; // zeros unless the circuit went through run_fused()
  CommStats comm;
  HealthStats health;   // numerical-health tier (defaults when disabled)
  SchedulerStats sched; // gate-window scheduler (defaults when off)
  RemapStats remap;     // communication-avoiding remap (defaults when off)
  RooflineStats roofline; // roofline attribution (defaults when off)
  MemoryStats memory;   // bytes-resident attribution (defaults when off)
  WaitProfile waitstate; // cross-PE wait-state breakdown (defaults when off)
  TrafficMatrix matrix; // per-PE×PE traffic (distributed backends only)
  /// Flight-recorder events drained at the end of a successful run
  /// (empty when the recorder is disabled).
  std::vector<FlightEvent> flight;

  const GateKindStats& of(OP op) const {
    return by_op[static_cast<std::size_t>(op)];
  }

  /// Human-readable per-gate-kind breakdown + comm totals + health line.
  std::string summary() const;
};

/// Machine-readable export of the full report (schema "svsim-report-v1"):
/// gate/fusion/comm sections plus the health, traffic-matrix and flight
/// sections. Always valid RFC 8259 JSON (non-finite numbers become null).
std::string to_json(const RunReport& report);

/// Count `circuit`'s gates by kind into `report` (cheap; runs even with
/// profiling off so every report has the count breakdown).
void tally_gates(RunReport& report, const Circuit& circuit);

} // namespace svsim::obs
