file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_files.dir/test_qasm_files.cpp.o"
  "CMakeFiles/test_qasm_files.dir/test_qasm_files.cpp.o.d"
  "test_qasm_files"
  "test_qasm_files.pdb"
  "test_qasm_files[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
