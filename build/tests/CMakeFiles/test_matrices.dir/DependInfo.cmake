
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_matrices.cpp" "tests/CMakeFiles/test_matrices.dir/test_matrices.cpp.o" "gcc" "tests/CMakeFiles/test_matrices.dir/test_matrices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qasm/CMakeFiles/svsim_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/svsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/svsim_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/vqa/CMakeFiles/svsim_vqa.dir/DependInfo.cmake"
  "/root/repo/build/src/qir/CMakeFiles/svsim_qir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/svsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/svsim_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/svsim_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/svsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
