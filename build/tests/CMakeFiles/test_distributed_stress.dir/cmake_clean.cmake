file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_stress.dir/test_distributed_stress.cpp.o"
  "CMakeFiles/test_distributed_stress.dir/test_distributed_stress.cpp.o.d"
  "test_distributed_stress"
  "test_distributed_stress.pdb"
  "test_distributed_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
