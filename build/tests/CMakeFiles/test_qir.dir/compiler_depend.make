# Empty compiler generated dependencies file for test_qir.
# This may be replaced when dependencies are built.
