file(REMOVE_RECURSE
  "CMakeFiles/test_qir.dir/test_qir.cpp.o"
  "CMakeFiles/test_qir.dir/test_qir.cpp.o.d"
  "test_qir"
  "test_qir.pdb"
  "test_qir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
