# Empty dependencies file for test_load_state.
# This may be replaced when dependencies are built.
