file(REMOVE_RECURSE
  "CMakeFiles/test_load_state.dir/test_load_state.cpp.o"
  "CMakeFiles/test_load_state.dir/test_load_state.cpp.o.d"
  "test_load_state"
  "test_load_state.pdb"
  "test_load_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
