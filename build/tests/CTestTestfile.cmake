# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_shmem[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_matrices[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_backends[1]_include.cmake")
include("/root/repo/build/tests/test_measurement[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_circuits[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_vqa[1]_include.cmake")
include("/root/repo/build/tests/test_qir[1]_include.cmake")
include("/root/repo/build/tests/test_fusion[1]_include.cmake")
include("/root/repo/build/tests/test_batched[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_qasm_files[1]_include.cmake")
include("/root/repo/build/tests/test_load_state[1]_include.cmake")
include("/root/repo/build/tests/test_controlled[1]_include.cmake")
include("/root/repo/build/tests/test_density[1]_include.cmake")
include("/root/repo/build/tests/test_remap[1]_include.cmake")
include("/root/repo/build/tests/test_distributed_stress[1]_include.cmake")
include("/root/repo/build/tests/test_qasm_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_obs[1]_include.cmake")
add_test(profile_smoke "/usr/bin/cmake" "-DRUNNER=/root/repo/build/examples/qasm_runner" "-DTRACE_CHECK=/root/repo/build/tests/trace_check" "-DQASM=/root/repo/examples/qasm/ghz8.qasm" "-DWORK_DIR=/root/repo/build/tests" "-P" "/root/repo/tests/profile_smoke.cmake")
set_tests_properties(profile_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
