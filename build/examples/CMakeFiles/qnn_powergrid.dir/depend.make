# Empty dependencies file for qnn_powergrid.
# This may be replaced when dependencies are built.
