file(REMOVE_RECURSE
  "CMakeFiles/qnn_powergrid.dir/qnn_powergrid.cpp.o"
  "CMakeFiles/qnn_powergrid.dir/qnn_powergrid.cpp.o.d"
  "qnn_powergrid"
  "qnn_powergrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_powergrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
