file(REMOVE_RECURSE
  "CMakeFiles/vqe_h2.dir/vqe_h2.cpp.o"
  "CMakeFiles/vqe_h2.dir/vqe_h2.cpp.o.d"
  "vqe_h2"
  "vqe_h2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_h2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
