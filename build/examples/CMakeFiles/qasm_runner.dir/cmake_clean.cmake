file(REMOVE_RECURSE
  "CMakeFiles/qasm_runner.dir/qasm_runner.cpp.o"
  "CMakeFiles/qasm_runner.dir/qasm_runner.cpp.o.d"
  "qasm_runner"
  "qasm_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
