# Empty compiler generated dependencies file for qasm_runner.
# This may be replaced when dependencies are built.
