# Empty dependencies file for export_qasmbench.
# This may be replaced when dependencies are built.
