file(REMOVE_RECURSE
  "CMakeFiles/export_qasmbench.dir/export_qasmbench.cpp.o"
  "CMakeFiles/export_qasmbench.dir/export_qasmbench.cpp.o.d"
  "export_qasmbench"
  "export_qasmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_qasmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
