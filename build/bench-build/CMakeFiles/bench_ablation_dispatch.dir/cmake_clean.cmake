file(REMOVE_RECURSE
  "../bench/bench_ablation_dispatch"
  "../bench/bench_ablation_dispatch.pdb"
  "CMakeFiles/bench_ablation_dispatch.dir/bench_ablation_dispatch.cpp.o"
  "CMakeFiles/bench_ablation_dispatch.dir/bench_ablation_dispatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
