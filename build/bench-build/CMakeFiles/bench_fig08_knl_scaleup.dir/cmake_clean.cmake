file(REMOVE_RECURSE
  "../bench/bench_fig08_knl_scaleup"
  "../bench/bench_fig08_knl_scaleup.pdb"
  "CMakeFiles/bench_fig08_knl_scaleup.dir/bench_fig08_knl_scaleup.cpp.o"
  "CMakeFiles/bench_fig08_knl_scaleup.dir/bench_fig08_knl_scaleup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_knl_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
