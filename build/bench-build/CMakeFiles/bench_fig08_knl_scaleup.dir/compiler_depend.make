# Empty compiler generated dependencies file for bench_fig08_knl_scaleup.
# This may be replaced when dependencies are built.
