# Empty dependencies file for bench_fig07_cpu_scaleup.
# This may be replaced when dependencies are built.
