# Empty compiler generated dependencies file for bench_fig10_dgxa100_scaleup.
# This may be replaced when dependencies are built.
