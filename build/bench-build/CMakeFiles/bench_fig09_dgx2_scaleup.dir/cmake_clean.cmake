file(REMOVE_RECURSE
  "../bench/bench_fig09_dgx2_scaleup"
  "../bench/bench_fig09_dgx2_scaleup.pdb"
  "CMakeFiles/bench_fig09_dgx2_scaleup.dir/bench_fig09_dgx2_scaleup.cpp.o"
  "CMakeFiles/bench_fig09_dgx2_scaleup.dir/bench_fig09_dgx2_scaleup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_dgx2_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
