# Empty compiler generated dependencies file for bench_fig09_dgx2_scaleup.
# This may be replaced when dependencies are built.
