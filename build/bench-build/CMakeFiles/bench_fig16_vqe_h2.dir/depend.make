# Empty dependencies file for bench_fig16_vqe_h2.
# This may be replaced when dependencies are built.
