file(REMOVE_RECURSE
  "../bench/bench_fig16_vqe_h2"
  "../bench/bench_fig16_vqe_h2.pdb"
  "CMakeFiles/bench_fig16_vqe_h2.dir/bench_fig16_vqe_h2.cpp.o"
  "CMakeFiles/bench_fig16_vqe_h2.dir/bench_fig16_vqe_h2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_vqe_h2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
