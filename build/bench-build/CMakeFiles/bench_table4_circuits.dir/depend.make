# Empty dependencies file for bench_table4_circuits.
# This may be replaced when dependencies are built.
