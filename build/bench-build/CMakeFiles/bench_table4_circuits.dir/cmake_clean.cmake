file(REMOVE_RECURSE
  "../bench/bench_table4_circuits"
  "../bench/bench_table4_circuits.pdb"
  "CMakeFiles/bench_table4_circuits.dir/bench_table4_circuits.cpp.o"
  "CMakeFiles/bench_table4_circuits.dir/bench_table4_circuits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
