# Empty compiler generated dependencies file for bench_fig13_summit_gpu_scaleout.
# This may be replaced when dependencies are built.
