file(REMOVE_RECURSE
  "../bench/bench_fig13_summit_gpu_scaleout"
  "../bench/bench_fig13_summit_gpu_scaleout.pdb"
  "CMakeFiles/bench_fig13_summit_gpu_scaleout.dir/bench_fig13_summit_gpu_scaleout.cpp.o"
  "CMakeFiles/bench_fig13_summit_gpu_scaleout.dir/bench_fig13_summit_gpu_scaleout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_summit_gpu_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
