# Empty compiler generated dependencies file for bench_fig12_summit_cpu_scaleout.
# This may be replaced when dependencies are built.
