file(REMOVE_RECURSE
  "../bench/bench_fig12_summit_cpu_scaleout"
  "../bench/bench_fig12_summit_cpu_scaleout.pdb"
  "CMakeFiles/bench_fig12_summit_cpu_scaleout.dir/bench_fig12_summit_cpu_scaleout.cpp.o"
  "CMakeFiles/bench_fig12_summit_cpu_scaleout.dir/bench_fig12_summit_cpu_scaleout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_summit_cpu_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
