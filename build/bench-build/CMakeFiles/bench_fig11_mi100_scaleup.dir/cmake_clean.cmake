file(REMOVE_RECURSE
  "../bench/bench_fig11_mi100_scaleup"
  "../bench/bench_fig11_mi100_scaleup.pdb"
  "CMakeFiles/bench_fig11_mi100_scaleup.dir/bench_fig11_mi100_scaleup.cpp.o"
  "CMakeFiles/bench_fig11_mi100_scaleup.dir/bench_fig11_mi100_scaleup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mi100_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
