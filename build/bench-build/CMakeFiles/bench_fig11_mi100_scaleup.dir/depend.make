# Empty dependencies file for bench_fig11_mi100_scaleup.
# This may be replaced when dependencies are built.
