file(REMOVE_RECURSE
  "../bench/bench_fig06_single_device"
  "../bench/bench_fig06_single_device.pdb"
  "CMakeFiles/bench_fig06_single_device.dir/bench_fig06_single_device.cpp.o"
  "CMakeFiles/bench_fig06_single_device.dir/bench_fig06_single_device.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_single_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
