# Empty dependencies file for bench_fig06_single_device.
# This may be replaced when dependencies are built.
