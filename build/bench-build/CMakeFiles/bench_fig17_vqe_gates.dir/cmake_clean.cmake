file(REMOVE_RECURSE
  "../bench/bench_fig17_vqe_gates"
  "../bench/bench_fig17_vqe_gates.pdb"
  "CMakeFiles/bench_fig17_vqe_gates.dir/bench_fig17_vqe_gates.cpp.o"
  "CMakeFiles/bench_fig17_vqe_gates.dir/bench_fig17_vqe_gates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_vqe_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
