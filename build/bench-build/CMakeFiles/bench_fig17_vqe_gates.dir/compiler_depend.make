# Empty compiler generated dependencies file for bench_fig17_vqe_gates.
# This may be replaced when dependencies are built.
