# Empty dependencies file for bench_ablation_batched.
# This may be replaced when dependencies are built.
