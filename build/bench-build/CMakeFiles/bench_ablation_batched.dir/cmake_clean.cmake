file(REMOVE_RECURSE
  "../bench/bench_ablation_batched"
  "../bench/bench_ablation_batched.pdb"
  "CMakeFiles/bench_ablation_batched.dir/bench_ablation_batched.cpp.o"
  "CMakeFiles/bench_ablation_batched.dir/bench_ablation_batched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
