# Empty dependencies file for svsim_circuits.
# This may be replaced when dependencies are built.
