file(REMOVE_RECURSE
  "libsvsim_circuits.a"
)
