file(REMOVE_RECURSE
  "CMakeFiles/svsim_circuits.dir/qasmbench.cpp.o"
  "CMakeFiles/svsim_circuits.dir/qasmbench.cpp.o.d"
  "libsvsim_circuits.a"
  "libsvsim_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
