file(REMOVE_RECURSE
  "CMakeFiles/svsim_common.dir/config.cpp.o"
  "CMakeFiles/svsim_common.dir/config.cpp.o.d"
  "CMakeFiles/svsim_common.dir/logging.cpp.o"
  "CMakeFiles/svsim_common.dir/logging.cpp.o.d"
  "libsvsim_common.a"
  "libsvsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
