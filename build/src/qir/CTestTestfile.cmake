# CMake generated Testfile for 
# Source directory: /root/repo/src/qir
# Build directory: /root/repo/build/src/qir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
