file(REMOVE_RECURSE
  "libsvsim_qir.a"
)
