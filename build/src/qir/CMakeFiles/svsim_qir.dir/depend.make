# Empty dependencies file for svsim_qir.
# This may be replaced when dependencies are built.
