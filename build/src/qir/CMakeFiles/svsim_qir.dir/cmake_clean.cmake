file(REMOVE_RECURSE
  "CMakeFiles/svsim_qir.dir/qir.cpp.o"
  "CMakeFiles/svsim_qir.dir/qir.cpp.o.d"
  "libsvsim_qir.a"
  "libsvsim_qir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_qir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
