# Empty dependencies file for svsim_core.
# This may be replaced when dependencies are built.
