file(REMOVE_RECURSE
  "libsvsim_core.a"
)
