file(REMOVE_RECURSE
  "CMakeFiles/svsim_core.dir/coarse_msg_sim.cpp.o"
  "CMakeFiles/svsim_core.dir/coarse_msg_sim.cpp.o.d"
  "CMakeFiles/svsim_core.dir/density_sim.cpp.o"
  "CMakeFiles/svsim_core.dir/density_sim.cpp.o.d"
  "CMakeFiles/svsim_core.dir/generalized_sim.cpp.o"
  "CMakeFiles/svsim_core.dir/generalized_sim.cpp.o.d"
  "CMakeFiles/svsim_core.dir/noise.cpp.o"
  "CMakeFiles/svsim_core.dir/noise.cpp.o.d"
  "CMakeFiles/svsim_core.dir/peer_sim.cpp.o"
  "CMakeFiles/svsim_core.dir/peer_sim.cpp.o.d"
  "CMakeFiles/svsim_core.dir/shmem_sim.cpp.o"
  "CMakeFiles/svsim_core.dir/shmem_sim.cpp.o.d"
  "CMakeFiles/svsim_core.dir/simd_kernels.cpp.o"
  "CMakeFiles/svsim_core.dir/simd_kernels.cpp.o.d"
  "CMakeFiles/svsim_core.dir/single_sim.cpp.o"
  "CMakeFiles/svsim_core.dir/single_sim.cpp.o.d"
  "libsvsim_core.a"
  "libsvsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
