
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coarse_msg_sim.cpp" "src/core/CMakeFiles/svsim_core.dir/coarse_msg_sim.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/coarse_msg_sim.cpp.o.d"
  "/root/repo/src/core/density_sim.cpp" "src/core/CMakeFiles/svsim_core.dir/density_sim.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/density_sim.cpp.o.d"
  "/root/repo/src/core/generalized_sim.cpp" "src/core/CMakeFiles/svsim_core.dir/generalized_sim.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/generalized_sim.cpp.o.d"
  "/root/repo/src/core/noise.cpp" "src/core/CMakeFiles/svsim_core.dir/noise.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/noise.cpp.o.d"
  "/root/repo/src/core/peer_sim.cpp" "src/core/CMakeFiles/svsim_core.dir/peer_sim.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/peer_sim.cpp.o.d"
  "/root/repo/src/core/shmem_sim.cpp" "src/core/CMakeFiles/svsim_core.dir/shmem_sim.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/shmem_sim.cpp.o.d"
  "/root/repo/src/core/simd_kernels.cpp" "src/core/CMakeFiles/svsim_core.dir/simd_kernels.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/simd_kernels.cpp.o.d"
  "/root/repo/src/core/single_sim.cpp" "src/core/CMakeFiles/svsim_core.dir/single_sim.cpp.o" "gcc" "src/core/CMakeFiles/svsim_core.dir/single_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/svsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/svsim_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/svsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
