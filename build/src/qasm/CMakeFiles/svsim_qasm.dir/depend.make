# Empty dependencies file for svsim_qasm.
# This may be replaced when dependencies are built.
