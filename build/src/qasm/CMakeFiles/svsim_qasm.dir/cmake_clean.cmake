file(REMOVE_RECURSE
  "CMakeFiles/svsim_qasm.dir/lexer.cpp.o"
  "CMakeFiles/svsim_qasm.dir/lexer.cpp.o.d"
  "CMakeFiles/svsim_qasm.dir/parser.cpp.o"
  "CMakeFiles/svsim_qasm.dir/parser.cpp.o.d"
  "libsvsim_qasm.a"
  "libsvsim_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
