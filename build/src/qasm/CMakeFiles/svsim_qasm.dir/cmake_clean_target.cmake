file(REMOVE_RECURSE
  "libsvsim_qasm.a"
)
