file(REMOVE_RECURSE
  "CMakeFiles/svsim_shmem.dir/shmem.cpp.o"
  "CMakeFiles/svsim_shmem.dir/shmem.cpp.o.d"
  "libsvsim_shmem.a"
  "libsvsim_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
