file(REMOVE_RECURSE
  "libsvsim_shmem.a"
)
