# Empty dependencies file for svsim_shmem.
# This may be replaced when dependencies are built.
