file(REMOVE_RECURSE
  "CMakeFiles/svsim_machine.dir/model.cpp.o"
  "CMakeFiles/svsim_machine.dir/model.cpp.o.d"
  "CMakeFiles/svsim_machine.dir/platforms.cpp.o"
  "CMakeFiles/svsim_machine.dir/platforms.cpp.o.d"
  "libsvsim_machine.a"
  "libsvsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
