file(REMOVE_RECURSE
  "CMakeFiles/svsim_obs.dir/registry.cpp.o"
  "CMakeFiles/svsim_obs.dir/registry.cpp.o.d"
  "CMakeFiles/svsim_obs.dir/report.cpp.o"
  "CMakeFiles/svsim_obs.dir/report.cpp.o.d"
  "CMakeFiles/svsim_obs.dir/trace.cpp.o"
  "CMakeFiles/svsim_obs.dir/trace.cpp.o.d"
  "libsvsim_obs.a"
  "libsvsim_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
