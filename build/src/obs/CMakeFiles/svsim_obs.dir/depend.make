# Empty dependencies file for svsim_obs.
# This may be replaced when dependencies are built.
