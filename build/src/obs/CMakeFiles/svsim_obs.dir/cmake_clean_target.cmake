file(REMOVE_RECURSE
  "libsvsim_obs.a"
)
