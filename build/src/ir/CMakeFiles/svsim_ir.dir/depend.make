# Empty dependencies file for svsim_ir.
# This may be replaced when dependencies are built.
