file(REMOVE_RECURSE
  "libsvsim_ir.a"
)
