file(REMOVE_RECURSE
  "CMakeFiles/svsim_ir.dir/circuit.cpp.o"
  "CMakeFiles/svsim_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/svsim_ir.dir/controlled.cpp.o"
  "CMakeFiles/svsim_ir.dir/controlled.cpp.o.d"
  "CMakeFiles/svsim_ir.dir/fusion.cpp.o"
  "CMakeFiles/svsim_ir.dir/fusion.cpp.o.d"
  "CMakeFiles/svsim_ir.dir/matrices.cpp.o"
  "CMakeFiles/svsim_ir.dir/matrices.cpp.o.d"
  "CMakeFiles/svsim_ir.dir/op.cpp.o"
  "CMakeFiles/svsim_ir.dir/op.cpp.o.d"
  "CMakeFiles/svsim_ir.dir/remap.cpp.o"
  "CMakeFiles/svsim_ir.dir/remap.cpp.o.d"
  "libsvsim_ir.a"
  "libsvsim_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
