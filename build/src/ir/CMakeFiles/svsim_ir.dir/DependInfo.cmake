
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/circuit.cpp" "src/ir/CMakeFiles/svsim_ir.dir/circuit.cpp.o" "gcc" "src/ir/CMakeFiles/svsim_ir.dir/circuit.cpp.o.d"
  "/root/repo/src/ir/controlled.cpp" "src/ir/CMakeFiles/svsim_ir.dir/controlled.cpp.o" "gcc" "src/ir/CMakeFiles/svsim_ir.dir/controlled.cpp.o.d"
  "/root/repo/src/ir/fusion.cpp" "src/ir/CMakeFiles/svsim_ir.dir/fusion.cpp.o" "gcc" "src/ir/CMakeFiles/svsim_ir.dir/fusion.cpp.o.d"
  "/root/repo/src/ir/matrices.cpp" "src/ir/CMakeFiles/svsim_ir.dir/matrices.cpp.o" "gcc" "src/ir/CMakeFiles/svsim_ir.dir/matrices.cpp.o.d"
  "/root/repo/src/ir/op.cpp" "src/ir/CMakeFiles/svsim_ir.dir/op.cpp.o" "gcc" "src/ir/CMakeFiles/svsim_ir.dir/op.cpp.o.d"
  "/root/repo/src/ir/remap.cpp" "src/ir/CMakeFiles/svsim_ir.dir/remap.cpp.o" "gcc" "src/ir/CMakeFiles/svsim_ir.dir/remap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
