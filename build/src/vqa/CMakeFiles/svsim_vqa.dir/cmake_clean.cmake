file(REMOVE_RECURSE
  "CMakeFiles/svsim_vqa.dir/ansatz.cpp.o"
  "CMakeFiles/svsim_vqa.dir/ansatz.cpp.o.d"
  "CMakeFiles/svsim_vqa.dir/batched.cpp.o"
  "CMakeFiles/svsim_vqa.dir/batched.cpp.o.d"
  "CMakeFiles/svsim_vqa.dir/optimizer.cpp.o"
  "CMakeFiles/svsim_vqa.dir/optimizer.cpp.o.d"
  "CMakeFiles/svsim_vqa.dir/pauli.cpp.o"
  "CMakeFiles/svsim_vqa.dir/pauli.cpp.o.d"
  "CMakeFiles/svsim_vqa.dir/qnn.cpp.o"
  "CMakeFiles/svsim_vqa.dir/qnn.cpp.o.d"
  "CMakeFiles/svsim_vqa.dir/uccsd.cpp.o"
  "CMakeFiles/svsim_vqa.dir/uccsd.cpp.o.d"
  "CMakeFiles/svsim_vqa.dir/vqe.cpp.o"
  "CMakeFiles/svsim_vqa.dir/vqe.cpp.o.d"
  "libsvsim_vqa.a"
  "libsvsim_vqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_vqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
