file(REMOVE_RECURSE
  "libsvsim_vqa.a"
)
