# Empty dependencies file for svsim_vqa.
# This may be replaced when dependencies are built.
