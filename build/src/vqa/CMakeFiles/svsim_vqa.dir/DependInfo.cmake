
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vqa/ansatz.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/ansatz.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/ansatz.cpp.o.d"
  "/root/repo/src/vqa/batched.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/batched.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/batched.cpp.o.d"
  "/root/repo/src/vqa/optimizer.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/optimizer.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/optimizer.cpp.o.d"
  "/root/repo/src/vqa/pauli.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/pauli.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/pauli.cpp.o.d"
  "/root/repo/src/vqa/qnn.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/qnn.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/qnn.cpp.o.d"
  "/root/repo/src/vqa/uccsd.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/uccsd.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/uccsd.cpp.o.d"
  "/root/repo/src/vqa/vqe.cpp" "src/vqa/CMakeFiles/svsim_vqa.dir/vqe.cpp.o" "gcc" "src/vqa/CMakeFiles/svsim_vqa.dir/vqe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/svsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/svsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/svsim_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/svsim_shmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
