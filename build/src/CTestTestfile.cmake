# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("shmem")
subdirs("ir")
subdirs("obs")
subdirs("core")
subdirs("qasm")
subdirs("machine")
subdirs("circuits")
subdirs("vqa")
subdirs("qir")
