// svsim_diffcheck: differential correctness driver.
//
// Phases (all seeded, all reproducible from the command line):
//   diff      N random circuits -> dense-matrix oracle vs every point of
//             {single, peer, shmem, coarse} x {fusion} x {sched};
//             divergences print the spec, the first diverging gate index,
//             and the offending circuit as QASM.
//   roundtrip M random QASM programs -> parse -> print -> reparse ->
//             gate-for-gate comparison.
//   mutate    K mutants of a random base program through the parser;
//             any escape that is not svsim::Error is a crash finding
//             (pair with -DSVSIM_SANITIZE=address / undefined).
//   corpus    every .qasm under --corpus DIR must parse, round-trip, and
//             match the oracle on the single backend.
//
// Exit status: 0 iff every phase is clean. A failing circuit is dumped so
// `svsim_diffcheck --replay dump.qasm` (or the printed seed) reproduces it.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qasm/parser.hpp"
#include "testing/diff.hpp"
#include "testing/qasm_fuzz.hpp"
#include "testing/rand_circuit.hpp"

using namespace svsim;
using namespace svsim::testing;

namespace {

struct Options {
  int circuits = 100;
  std::uint64_t seed = 42;
  IdxType qubits = 6;
  IdxType gates = 100;
  int workers = 4;
  IdxType shots = 256;
  ValType tol = 1e-9;
  int roundtrips = 50;
  int mutants = 0;
  std::string corpus;
  std::string replay;
  bool verbose = false;
  /// Remap-focused campaign: boost mid-circuit measure/reset rates,
  /// append a trailing measure_all to every circuit, and sweep only the
  /// partitioned backends (where the remap axis exists) — the CI legs
  /// that prove the virtual readout permutation bit-for-bit.
  bool remap_stress = false;
};

void usage() {
  std::cout <<
      "svsim_diffcheck [options]\n"
      "  --circuits N    random circuits for the diff sweep (default 100)\n"
      "  --seed S        campaign seed (default 42)\n"
      "  --qubits N      qubits per random circuit (default 6)\n"
      "  --gates N       gates per random circuit (default 100)\n"
      "  --workers K     workers for peer/shmem/coarse (default 4)\n"
      "  --shots N       sampling-equivalence shots (default 256)\n"
      "  --tol T         amplitude tolerance (default 1e-9)\n"
      "  --roundtrips N  QASM round-trip fuzz programs (default 50)\n"
      "  --mutants N     parser mutation fuzz mutants (default 0)\n"
      "  --corpus DIR    also check every .qasm file under DIR\n"
      "  --replay FILE   diff-check one QASM file and exit\n"
      "  --remap-stress  adversarial remap campaign: heavy mid-circuit\n"
      "                  measure/reset + trailing measure_all, partitioned\n"
      "                  backends only (remap off AND on per spec)\n"
      "  --verbose       print every config checked\n";
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--circuits") opt.circuits = std::atoi(next());
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--qubits") opt.qubits = std::atoll(next());
    else if (a == "--gates") opt.gates = std::atoll(next());
    else if (a == "--workers") opt.workers = std::atoi(next());
    else if (a == "--shots") opt.shots = std::atoll(next());
    else if (a == "--tol") opt.tol = std::atof(next());
    else if (a == "--roundtrips") opt.roundtrips = std::atoi(next());
    else if (a == "--mutants") opt.mutants = std::atoi(next());
    else if (a == "--corpus") opt.corpus = next();
    else if (a == "--replay") opt.replay = next();
    else if (a == "--remap-stress") opt.remap_stress = true;
    else if (a == "--verbose") opt.verbose = true;
    else if (a == "--help" || a == "-h") { usage(); std::exit(0); }
    else {
      std::cerr << "unknown option: " << a << "\n";
      usage();
      return false;
    }
  }
  return true;
}

/// Diff one circuit against the oracle across the whole sweep. Returns
/// the number of diverging configs; prints a DIVERGE line for each.
/// The sweep a campaign runs per circuit: the full default sweep, or —
/// under --remap-stress — only the partitioned-backend specs, where the
/// remap axis (off and on) actually exists.
std::vector<DiffSpec> campaign_sweep(const Options& opt) {
  std::vector<DiffSpec> specs =
      default_sweep(opt.workers, opt.seed, opt.shots, opt.tol);
  if (opt.remap_stress) {
    specs.erase(std::remove_if(specs.begin(), specs.end(),
                               [](const DiffSpec& s) {
                                 return s.batch > 0 || s.backend == "single";
                               }),
                specs.end());
  }
  return specs;
}

int diff_one(const Circuit& c, const std::string& tag, const Options& opt) {
  int failures = 0;
  const OracleResult oracle = oracle_run(c, opt.seed, opt.shots);
  for (const DiffSpec& spec : campaign_sweep(opt)) {
    const DiffResult r = diff_run(c, oracle, spec);
    if (opt.verbose) {
      std::cout << "  [" << tag << "] " << spec.label()
                << (r.ok ? " ok" : " DIVERGE") << " max_diff=" << r.max_diff
                << "\n";
    }
    if (!r.ok) {
      ++failures;
      std::cout << "DIVERGE " << tag << " config=(" << r.config
                << ") first_gate=" << r.first_divergence << " " << r.detail
                << "\n";
    }
  }
  if (failures > 0) {
    const std::string dump = "diffcheck_fail_" + tag + ".qasm";
    std::ofstream out(dump);
    out << c.to_qasm();
    std::cout << "  circuit dumped to " << dump << " (replay with --replay)\n";
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  int failures = 0;

  try {
    if (!opt.replay.empty()) {
      const Circuit c =
          qasm::parse_qasm_file(opt.replay, CompoundMode::kNative);
      failures += diff_one(c, "replay", opt);
      std::cout << (failures == 0 ? "replay clean\n" : "replay diverged\n");
      return failures == 0 ? 0 : 1;
    }

    // Phase 1: random-circuit differential sweep.
    CircuitGenOptions gen;
    gen.n_qubits = opt.qubits;
    gen.n_gates = opt.gates;
    if (opt.remap_stress) {
      gen.p_measure = 0.08;
      gen.p_reset = 0.05;
    }
    for (int i = 0; i < opt.circuits; ++i) {
      Circuit c = random_circuit(gen, mix_seed(opt.seed, i));
      // Trailing measure_all exercises the layout-snapshot readout that
      // the quarantined pass used to hard-throw on.
      if (opt.remap_stress) c.measure_all();
      failures += diff_one(c, "c" + std::to_string(i), opt);
    }
    std::cout << "diff: " << opt.circuits << " circuits x "
              << campaign_sweep(opt).size() << " configs, " << failures
              << " divergence(s)\n";

    // Phase 2: QASM round-trip fuzzing.
    int rt_failures = 0;
    for (int i = 0; i < opt.roundtrips; ++i) {
      const std::string src = random_qasm({}, mix_seed(opt.seed ^ 0x5a5a, i));
      const RoundTripResult r = roundtrip_once(src);
      if (!r.ok) {
        ++rt_failures;
        std::cout << "ROUNDTRIP-FAIL seed=" << mix_seed(opt.seed ^ 0x5a5a, i)
                  << ": " << r.detail << "\n--- source ---\n" << src
                  << "--------------\n";
      }
    }
    std::cout << "roundtrip: " << opt.roundtrips << " programs, "
              << rt_failures << " failure(s)\n";
    failures += rt_failures;

    // Phase 3: parser mutation fuzzing (crash-safety; meant for sanitizer
    // builds — a finding is a non-svsim exception or a sanitizer abort).
    if (opt.mutants > 0) {
      const std::string base = random_qasm({}, mix_seed(opt.seed, 9001));
      const MutationFuzzStats st =
          mutation_fuzz(base, opt.mutants, opt.seed ^ 0xf022ULL);
      std::cout << "mutate: " << st.n_mutants << " mutants, " << st.parsed_ok
                << " parsed, " << st.rejected << " rejected, 0 crashes\n";
    }

    // Phase 4: checked-in corpus.
    if (!opt.corpus.empty()) {
      int corpus_failures = 0;
      int n_files = 0;
      std::vector<std::filesystem::path> files;
      for (const auto& e :
           std::filesystem::recursive_directory_iterator(opt.corpus)) {
        if (e.path().extension() == ".qasm") files.push_back(e.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& path : files) {
        ++n_files;
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        const RoundTripResult rt = roundtrip_once(ss.str());
        if (!rt.ok) {
          ++corpus_failures;
          std::cout << "CORPUS-FAIL " << path << ": " << rt.detail << "\n";
          continue;
        }
        const Circuit c = qasm::parse_qasm(ss.str(), CompoundMode::kNative);
        corpus_failures += diff_one(c, path.stem().string(), opt);
      }
      std::cout << "corpus: " << n_files << " files, " << corpus_failures
                << " failure(s)\n";
      failures += corpus_failures;
    }
  } catch (const std::exception& e) {
    std::cerr << "diffcheck: fatal: " << e.what() << "\n";
    return 2;
  }

  std::cout << (failures == 0 ? "ALL CLEAN\n" : "FAILURES DETECTED\n");
  return failures == 0 ? 0 : 1;
}
