// svsim_analyze: post-process svsim-report-v1 documents and maintain the
// append-only run-ledger — the cross-run telemetry companion to
// qasm_runner --report-json.
//
//   # wait-state breakdown + per-PE heatmap from a report
//   $ svsim_analyze report.json
//
//   # append report summaries to a ledger (created on first use)
//   $ svsim_analyze --ledger runs.jsonl report1.json report2.json
//
//   # compare all runs in the ledger, grouped by circuit/config/CPU key
//   $ svsim_analyze --compare --ledger runs.jsonl
//
//   # merge per-process Chrome traces into one clock-aligned timeline
//   $ svsim_analyze --merge-trace merged.json a.trace.json b.trace.json
//
// Exit codes: 0 success, 1 usage/IO/parse error on inputs, 3 corrupted
// ledger line (the negative control analyze_smoke checks).
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/jsonlite.hpp"

namespace {

using svsim::obs::WaitProfile;
using svsim::obs::jsonlite::Value;
namespace ledger = svsim::obs::ledger;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool load_json(const std::string& path, Value* out) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "svsim_analyze: cannot read %s\n", path.c_str());
    return false;
  }
  std::size_t off = 0;
  if (!svsim::obs::jsonlite::parse(text, out, &off)) {
    std::fprintf(stderr, "svsim_analyze: %s: invalid JSON at byte %zu\n",
                 path.c_str(), off);
    return false;
  }
  return true;
}

/// Rebuild the WaitProfile from a report's "waitstate" section so the
/// breakdown prints with the exact same table() the simulator uses.
WaitProfile profile_from_report(const Value& report) {
  WaitProfile p;
  const Value* ws = report.find("waitstate");
  if (ws == nullptr || !ws->is_object()) return p;
  const Value* on = ws->find("enabled");
  if (on == nullptr || !on->bool_or(false)) return p;
  p.enabled = true;
  if (const Value* per = ws->find("per_pe"); per != nullptr && per->is_array()) {
    for (const Value& v : per->items) {
      WaitProfile::PerPe pe;
      pe.wall_s = v.member_num("wall_s", 0);
      pe.compute_s = v.member_num("compute_s", 0);
      pe.barrier_s = v.member_num("barrier_s", 0);
      pe.reduction_s = v.member_num("reduction_s", 0);
      pe.transfer_s = v.member_num("transfer_s", 0);
      pe.barrier_n = static_cast<std::uint64_t>(v.member_num("barrier_n", 0));
      pe.reduction_n =
          static_cast<std::uint64_t>(v.member_num("reduction_n", 0));
      pe.transfer_n = static_cast<std::uint64_t>(v.member_num("transfer_n", 0));
      p.per_pe.push_back(pe);
    }
  }
  p.imbalance = ws->member_num("imbalance", 0);
  p.straggler = static_cast<int>(ws->member_num("straggler", -1));
  p.wait_fraction = ws->member_num("wait_fraction", 0);
  if (const Value* t = ws->find("truncated")) p.truncated = t->bool_or(false);
  p.critical_pe = static_cast<int>(ws->member_num("critical_pe", -1));
  p.critical_phase = ws->member_str("critical_phase", "");
  p.critical_s = ws->member_num("critical_s", 0);
  if (const Value* crit = ws->find("critical");
      crit != nullptr && crit->is_array()) {
    for (const Value& v : crit->items) {
      WaitProfile::Critical c;
      c.pe = static_cast<int>(v.member_num("pe", -1));
      c.phase = v.member_str("phase", "");
      c.seconds = v.member_num("seconds", 0);
      c.phases = static_cast<std::uint64_t>(v.member_num("phases", 0));
      p.critical.push_back(std::move(c));
    }
  }
  return p;
}

int show_breakdown(const std::string& path) {
  Value report;
  if (!load_json(path, &report)) return 1;
  if (report.member_str("schema", "") != "svsim-report-v1") {
    std::fprintf(stderr, "svsim_analyze: %s is not an svsim-report-v1 report\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: backend=%s qubits=%lld workers=%d gates=%llu "
              "wall=%.3f ms\n",
              path.c_str(), report.member_str("backend", "?").c_str(),
              static_cast<long long>(report.member_num("n_qubits", 0)),
              static_cast<int>(report.member_num("n_workers", 1)),
              static_cast<unsigned long long>(
                  report.member_num("total_gates", 0)),
              report.member_num("wall_seconds", 0) * 1e3);
  const std::string hash = report.member_str("circuit_hash", "");
  const std::string cpu = report.member_str("cpu", "");
  if (!hash.empty()) {
    std::printf("  circuit %s on %s\n", hash.c_str(),
                cpu.empty() ? "unknown-cpu" : cpu.c_str());
  }
  const WaitProfile p = profile_from_report(report);
  if (!p.enabled) {
    std::printf("  wait-state: not recorded (run with SVSIM_WAITSTATS=1)\n");
    return 0;
  }
  std::printf("%s", p.table().c_str());
  std::printf("    imbalance %.2f (max/avg compute), straggler PE %d, wait "
              "fraction %.1f%%\n",
              p.imbalance, p.straggler, p.wait_fraction * 100.0);
  if (p.critical_pe >= 0) {
    std::printf("    critical path: PE %d / %s bounds wall-clock\n",
                p.critical_pe, p.critical_phase.c_str());
    for (const WaitProfile::Critical& c : p.critical) {
      std::printf("      PE %d %-10s %10.3f ms over %llu phases\n", c.pe,
                  c.phase.c_str(), c.seconds * 1e3,
                  static_cast<unsigned long long>(c.phases));
    }
  }
  return 0;
}

int append_to_ledger(const std::string& ledger_path,
                     const std::vector<std::string>& reports) {
  std::ofstream out(ledger_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "svsim_analyze: cannot open ledger %s\n",
                 ledger_path.c_str());
    return 1;
  }
  for (const std::string& path : reports) {
    Value report;
    if (!load_json(path, &report)) return 1;
    ledger::Entry e;
    std::string err;
    if (!ledger::entry_from_report(report, &e, &err)) {
      std::fprintf(stderr, "svsim_analyze: %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
    e.unix_time = static_cast<long long>(std::time(nullptr));
    out << e.line() << '\n';
    std::printf("ledger %s += %s (%s, wall %.3f ms)\n", ledger_path.c_str(),
                e.key.c_str(), path.c_str(), e.wall_seconds * 1e3);
  }
  return 0;
}

int compare_ledger(const std::string& ledger_path) {
  std::ifstream in(ledger_path);
  if (!in) {
    std::fprintf(stderr, "svsim_analyze: cannot read ledger %s\n",
                 ledger_path.c_str());
    return 1;
  }
  std::vector<ledger::Entry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ledger::Entry e;
    std::string err;
    if (!ledger::parse_line(line, &e, &err)) {
      std::fprintf(stderr, "svsim_analyze: %s:%zu: corrupted ledger line (%s)\n",
                   ledger_path.c_str(), lineno, err.c_str());
      return 3;
    }
    entries.push_back(std::move(e));
  }
  std::printf("%s", ledger::compare(std::move(entries)).c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --merge-trace: N per-process Chrome trace files -> one aligned timeline.
// ---------------------------------------------------------------------------

/// JSON-escape and emit a string literal.
void emit_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Re-emit a parsed JSON value verbatim (used for event args and string
/// fields the merger carries through untouched).
void emit(std::ostringstream& os, const Value& v) {
  switch (v.type) {
    case Value::Type::kNull: os << "null"; break;
    case Value::Type::kBool: os << (v.boolean ? "true" : "false"); break;
    case Value::Type::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      os << buf;
      break;
    }
    case Value::Type::kString: emit_string(os, v.str); break;
    case Value::Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) os << ',';
        emit(os, v.items[i]);
      }
      os << ']';
      break;
    }
    case Value::Type::kObject: {
      os << '{';
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) os << ',';
        emit_string(os, v.members[i].first);
        os << ':';
        emit(os, v.members[i].second);
      }
      os << '}';
      break;
    }
  }
}

int merge_traces(const std::string& out_path,
                 const std::vector<std::string>& inputs) {
  if (inputs.empty()) {
    std::fprintf(stderr, "svsim_analyze: --merge-trace needs input traces\n");
    return 1;
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first_event = true;
  int pid_base = 0;
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    Value trace;
    if (!load_json(inputs[f], &trace)) return 1;
    const Value* events = trace.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "svsim_analyze: %s has no traceEvents array\n",
                   inputs[f].c_str());
      return 1;
    }
    // Clock alignment: each process stamps ts against its own steady-clock
    // epoch, so absolute values are incomparable across files. Re-zero
    // every file at its earliest event; relative timing within a file (the
    // part a timeline viewer shows) is preserved exactly.
    double t0 = 0;
    bool have_t0 = false;
    int max_pid = 0;
    for (const Value& e : events->items) {
      const double ts = e.member_num("ts", 0);
      if (!have_t0 || ts < t0) {
        t0 = ts;
        have_t0 = true;
      }
      const int pid = static_cast<int>(e.member_num("pid", 0));
      if (pid > max_pid) max_pid = pid;
    }
    for (const Value& e : events->items) {
      if (!e.is_object()) continue;
      if (!first_event) os << ',';
      first_event = false;
      os << '{';
      bool first_member = true;
      for (const auto& [key, val] : e.members) {
        if (!first_member) os << ',';
        first_member = false;
        emit_string(os, key);
        os << ':';
        if (key == "ts" && val.type == Value::Type::kNumber) {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.17g", val.number - t0);
          os << buf;
        } else if (key == "pid" && val.type == Value::Type::kNumber) {
          os << pid_base + static_cast<int>(val.number);
        } else {
          emit(os, val);
        }
      }
      os << '}';
    }
    // Give the next file a disjoint pid range so its process lanes stay
    // separate in the viewer.
    pid_base += max_pid + 1;
  }
  os << "]}";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "svsim_analyze: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << os.str() << '\n';
  std::printf("merged %zu trace(s) -> %s\n", inputs.size(), out_path.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: svsim_analyze <report.json>...                  breakdown\n"
      "       svsim_analyze --ledger L.jsonl <report.json>... append\n"
      "       svsim_analyze --compare --ledger L.jsonl        cross-run\n"
      "       svsim_analyze --merge-trace out.json <trace>... merge\n");
  return 1;
}

} // namespace

int main(int argc, char** argv) {
  std::string ledger_path;
  std::string merge_out;
  bool compare = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ledger" && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--merge-trace" && i + 1 < argc) {
      merge_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (!merge_out.empty()) return merge_traces(merge_out, files);
  if (compare) {
    if (ledger_path.empty()) return usage();
    return compare_ledger(ledger_path);
  }
  if (!ledger_path.empty()) {
    if (files.empty()) return usage();
    return append_to_ledger(ledger_path, files);
  }
  if (files.empty()) return usage();
  for (const std::string& f : files) {
    const int rc = show_breakdown(f);
    if (rc != 0) return rc;
  }
  return 0;
}
