// svsim_top: a live terminal monitor for a running simulation.
//
//   $ SVSIM_HTTP=9090 ./examples/qasm_runner big.qasm --backend shmem &
//   $ ./tools/svsim_top --port 9090
//
// Polls the embedded telemetry endpoint's GET /progress (and /healthz,
// /memory) over loopback HTTP and redraws a compact status screen: the
// run header, a memory line (tracked bytes / peak / live RSS), the
// model-calibrated completion fraction / achieved GB/s / ETA, and one
// row per PE with its retired-gate count, touched amplitudes, live wait
// share, and resident partition bytes. The wait and mem columns use the
// same shade alphabet as the report's traffic-matrix heatmap (' ' '.'
// ':' '+' '#', '#' = the PE spending the largest fraction of its time
// blocked / holding the most memory), so a straggler or an imbalanced
// partition reads at a glance.
//
//   --host H        endpoint host (default 127.0.0.1)
//   --port P        endpoint port (default: $SVSIM_HTTP)
//   --interval MS   poll period in milliseconds (default 500)
//   --once          print a single frame and exit (no screen clearing)
//
// Exits 0 when the watched run completes, 1 on usage or when the
// endpoint stays unreachable.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "obs/httpd.hpp"
#include "obs/jsonlite.hpp"

namespace {

using svsim::obs::jsonlite::Value;

const char kShade[] = {' ', '.', ':', '+', '#'};

char shade_for(double rel) {
  if (rel >= 0.999) return kShade[4];
  if (rel >= 0.75) return kShade[3];
  if (rel >= 0.5) return kShade[2];
  if (rel >= 0.25) return kShade[1];
  return kShade[0];
}

void format_bytes(char* buf, std::size_t len, double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::snprintf(buf, len, u == 0 ? "%.0f %s" : "%.2f %s", bytes, units[u]);
}

void format_eta(char* buf, std::size_t len, const Value* eta) {
  if (eta == nullptr || eta->type != Value::Type::kNumber) {
    std::snprintf(buf, len, "--:--");
    return;
  }
  const long long s = static_cast<long long>(eta->number + 0.5);
  if (s >= 3600) {
    std::snprintf(buf, len, "%lld:%02lld:%02lld", s / 3600, (s / 60) % 60,
                  s % 60);
  } else {
    std::snprintf(buf, len, "%lld:%02lld", s / 60, s % 60);
  }
}

/// One poll + render. Returns false when the endpoint did not answer.
bool render_frame(const std::string& host, int port, bool clear,
                  bool* finished) {
  int status = 0;
  std::string body;
  if (!svsim::obs::http_get(host, port, "/progress", &status, &body) ||
      status != 200) {
    return false;
  }
  Value doc;
  if (!svsim::obs::jsonlite::parse(body, &doc) || !doc.is_object()) {
    std::fprintf(stderr, "svsim_top: /progress returned malformed JSON\n");
    return false;
  }

  std::string health = "unknown";
  {
    int hstatus = 0;
    std::string hbody;
    Value hdoc;
    if (svsim::obs::http_get(host, port, "/healthz", &hstatus, &hbody) &&
        svsim::obs::jsonlite::parse(hbody, &hdoc)) {
      health = hdoc.member_str("status", "unknown");
      if (hstatus == 503) health += " (503)";
    }
  }

  // Memory plane (svsim-memory-v1): best-effort — an older endpoint
  // without /memory just leaves the memory line and column blank.
  Value mdoc;
  bool have_mem = false;
  {
    int mstatus = 0;
    std::string mbody;
    if (svsim::obs::http_get(host, port, "/memory", &mstatus, &mbody) &&
        mstatus == 200 && svsim::obs::jsonlite::parse(mbody, &mdoc) &&
        mdoc.is_object() &&
        mdoc.find("enabled") != nullptr &&
        mdoc.find("enabled")->bool_or(false)) {
      have_mem = true;
    }
  }

  if (clear) std::printf("\x1b[H\x1b[2J");

  const bool valid = doc.find("valid") != nullptr &&
                     doc.find("valid")->bool_or(false);
  if (!valid) {
    std::printf("svsim_top: endpoint up at %s:%d, no run registered yet\n",
                host.c_str(), port);
    *finished = false;
    return true;
  }

  const bool active = doc.find("active") != nullptr &&
                      doc.find("active")->bool_or(false);
  const double fraction = doc.member_num("fraction", 0);
  const double elapsed = doc.member_num("elapsed_s", 0);
  const double gbps = doc.member_num("gbps", 0);
  const double total_gates = doc.member_num("total_gates", 0);
  const double gates_done = doc.member_num("gates_done", 0);
  char eta[32];
  format_eta(eta, sizeof(eta), doc.find("eta_s"));

  std::printf("svsim %s  n=%lld  workers=%lld  window %lld  health %s%s\n",
              doc.member_str("backend", "?").c_str(),
              static_cast<long long>(doc.member_num("n_qubits", 0)),
              static_cast<long long>(doc.member_num("n_workers", 0)),
              static_cast<long long>(doc.member_num("window", 0)),
              health.c_str(),
              doc.find("interrupted") != nullptr &&
                      doc.find("interrupted")->bool_or(false)
                  ? "  [interrupted]"
                  : "");
  // The overall bar is bytes-weighted (perfmodel), so a cheap diagonal
  // tail doesn't stall the needle at 90%.
  constexpr int kBarWidth = 40;
  const int fill = static_cast<int>(fraction * kBarWidth + 0.5);
  std::printf("  [");
  for (int i = 0; i < kBarWidth; ++i) {
    std::printf("%c", i < fill ? '#' : ' ');
  }
  std::printf("] %5.1f%%  %.0f/%.0f gates  %.2f GB/s  eta %s  %s %.1fs\n",
              fraction * 100.0, gates_done, total_gates, gbps, eta,
              active ? "elapsed" : "finished in", elapsed);
  if (have_mem) {
    char tracked[32];
    char peak[32];
    format_bytes(tracked, sizeof(tracked), mdoc.member_num("tracked_bytes", 0));
    format_bytes(peak, sizeof(peak), mdoc.member_num("tracked_peak", 0));
    std::printf("  mem: tracked %s (peak %s)", tracked, peak);
    if (mdoc.find("sampled") != nullptr &&
        mdoc.find("sampled")->bool_or(false)) {
      char rss[32];
      char hwm[32];
      format_bytes(rss, sizeof(rss), mdoc.member_num("rss_bytes", 0));
      format_bytes(hwm, sizeof(hwm), mdoc.member_num("hwm_bytes", 0));
      std::printf("  rss %s (hwm %s)", rss, hwm);
    }
    std::printf("\n");
  }

  const Value* pes = doc.find("per_pe");
  if (pes != nullptr && pes->is_array() && !pes->items.empty()) {
    // Per-PE resident bytes from the memory plane, keyed by PE id. Shades
    // relative to the biggest holder — same convention as the wait column.
    const Value* mem_pes = have_mem ? mdoc.find("per_pe") : nullptr;
    auto pe_mem = [&](long long pe_id) -> double {
      if (mem_pes == nullptr || !mem_pes->is_array()) return -1;
      for (const Value& m : mem_pes->items) {
        if (static_cast<long long>(m.member_num("pe", -1)) == pe_id) {
          return m.member_num("current", 0);
        }
      }
      return -1;
    };
    double max_wait = 0;
    double max_mem = 0;
    for (const Value& pe : pes->items) {
      const double w = pe.member_num("wait_s", 0);
      if (w > max_wait) max_wait = w;
      const double m = pe_mem(static_cast<long long>(pe.member_num("pe", 0)));
      if (m > max_mem) max_mem = m;
    }
    std::printf("  %4s %14s %16s %10s %6s wait %10s\n", "pe", "gates",
                "amps", "wait_s", "wait%", "mem");
    for (const Value& pe : pes->items) {
      const double wait_s = pe.member_num("wait_s", 0);
      const double wait_pct =
          elapsed > 0 ? 100.0 * wait_s / elapsed : 0;
      const char shade =
          max_wait > 0 ? shade_for(wait_s / max_wait) : kShade[0];
      const long long pe_id =
          static_cast<long long>(pe.member_num("pe", 0));
      const double mem = pe_mem(pe_id);
      char membuf[32];
      if (mem >= 0) {
        format_bytes(membuf, sizeof(membuf), mem);
      } else {
        std::snprintf(membuf, sizeof(membuf), "-");
      }
      const char mshade =
          mem > 0 && max_mem > 0 ? shade_for(mem / max_mem) : kShade[0];
      std::printf("  %4lld %14.0f %16.0f %10.3f %5.1f%% %c    %10s %c\n",
                  pe_id, pe.member_num("gates_done", 0),
                  pe.member_num("amps_done", 0), wait_s, wait_pct, shade,
                  membuf, mshade);
    }
  }
  std::fflush(stdout);
  *finished = !active;
  return true;
}

void sleep_ms(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  nanosleep(&ts, nullptr);
}

} // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  int interval_ms = 500;
  bool once = false;
  if (const char* env = std::getenv("SVSIM_HTTP")) port = std::atoi(env);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms < 50) interval_ms = 50;
    } else if (arg == "--once") {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: svsim_top [--host H] [--port P] [--interval MS] "
                   "[--once]\n");
      return 1;
    }
  }
  if (port < 0) {
    std::fprintf(stderr,
                 "svsim_top: no port (pass --port or set SVSIM_HTTP)\n");
    return 1;
  }

  int misses = 0;
  bool ever_connected = false;
  while (true) {
    bool finished = false;
    if (render_frame(host, port, !once, &finished)) {
      ever_connected = true;
      misses = 0;
      if (once) return 0;
      if (finished) return 0; // final frame already drawn
    } else {
      if (once) {
        std::fprintf(stderr, "svsim_top: no endpoint at %s:%d\n",
                     host.c_str(), port);
        return 1;
      }
      // The watched process exiting closes the endpoint; a few misses in
      // a row means the run is gone.
      if (++misses >= 5) {
        if (!ever_connected) {
          std::fprintf(stderr, "svsim_top: no endpoint at %s:%d\n",
                       host.c_str(), port);
          return 1;
        }
        std::printf("svsim_top: endpoint at %s:%d closed\n", host.c_str(),
                    port);
        return 0;
      }
    }
    sleep_ms(interval_ms);
  }
}
